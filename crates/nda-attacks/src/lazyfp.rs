//! LazyFP / Meltdown v3a analogue: chosen-code leak of a privileged
//! special register via `RdMsr`.
//!
//! The paper treats special-register reads (AVX state in LazyFP, MSRs in
//! Meltdown v3a) "like loads": they are load-like for permissive
//! propagation and for load restriction. This PoC reads a privileged MSR —
//! which faults at commit but forwards its value speculatively under the
//! modelled implementation flaw — and transmits it through the d-cache.

use crate::layout::*;
use crate::util;
use nda_isa::{Asm, Program, Reg};

/// Wrong-path attempts before recovery.
const ATTEMPTS: u64 = 2;

/// Build the attack program for `secret`.
pub fn program(secret: u8) -> Program {
    let mut asm = Asm::new();
    let handler = asm.new_label();
    let attempt = asm.new_label();
    let recover = asm.new_label();
    asm.fault_handler(handler);
    asm.msr(SECRET_MSR, secret as u64); // privileged: not user-readable

    util::emit_probe_flush(&mut asm);
    asm.li(Reg::X9, 0);

    asm.bind(attempt);
    asm.addi(Reg::X9, Reg::X9, 1);
    // Blocker to delay fault delivery (as in the Meltdown PoC).
    asm.li(Reg::X10, BLOCKER_ADDR);
    asm.clflush(Reg::X10, 0);
    asm.ld8(Reg::X11, Reg::X10, 0);
    // Phase 1: privileged special-register read.
    asm.rdmsr(Reg::X6, SECRET_MSR); // faults at commit; value forwards now
                                    // Phase 2: transmit.
    asm.shli(Reg::X6, Reg::X6, 9);
    asm.li(Reg::X7, PROBE_BASE);
    asm.add(Reg::X7, Reg::X7, Reg::X6);
    asm.ld1(Reg::X8, Reg::X7, 0);
    asm.jmp(recover); // unreachable

    asm.bind(handler);
    asm.li(Reg::X26, ATTEMPTS);
    asm.bltu(Reg::X9, Reg::X26, attempt);

    asm.bind(recover);
    util::emit_recover(&mut asm);
    asm.halt();

    asm.assemble().expect("lazyfp assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use nda_isa::Interp;

    #[test]
    fn msr_is_architecturally_unreadable() {
        let p = program(42);
        let mut i = Interp::new(&p);
        let exit = i.run(10_000_000).expect("halts");
        assert!(exit.halted);
        assert_eq!(exit.faults, ATTEMPTS);
        assert_eq!(i.reg(Reg::X6), 0);
    }
}
