//! NetSpectre-style attack via the FPU power-state covert channel.
//!
//! No cache line is ever inspected: the transmitter is a *multiply*
//! executed (or not) on the wrong path depending on one secret bit. The
//! multiply wakes the powered-down multiply unit; the receiver times its
//! own multiply — fast if the unit is awake (bit = 1), slow by the
//! wake-up penalty if not (bit = 0). One bit per measurement, eight
//! measurements per byte.
//!
//! The inner bit-test branch is resolved only on the wrong path, so it
//! never commits and never trains the direction predictor — its cold
//! not-taken prediction keeps the multiply off the predicted path, making
//! the transmission deterministic: the multiply executes *only* when the
//! resolved secret bit redirects the wrong-path fetch to it.
//!
//! This channel defeats every cache-centric defense (InvisiSpec, delay-
//! on-miss); NDA blocks it at the source because the secret value never
//! reaches the bit-test.

use crate::layout::*;
use crate::util;
use nda_isa::{Asm, Program, Reg};

/// Cycles of FPU idling between measurements (> power-down threshold).
const IDLE_SPIN: u64 = 320;
/// Training calls before each measured transmission.
const TRAININGS: u64 = 8;

/// Build the attack program for `secret`. Requires the core's
/// `fpu_power_model` (see `AttackKind::tweak_config`).
pub fn program(secret: u8) -> Program {
    let mut asm = Asm::new();
    let main = asm.new_label();
    let victim = asm.new_label();
    asm.jmp(main);

    // victim(x in X2, bit index in X11): Spectre-v1 shaped, but the
    // wrong-path gadget transmits one bit through the multiplier.
    asm.bind(victim);
    let vout = asm.new_label();
    let do_mul = asm.new_label();
    let after = asm.new_label();
    asm.li(Reg::X3, ARRAY_SIZE_ADDR);
    asm.ld8(Reg::X4, Reg::X3, 0); // flushed: the speculation window
    asm.bgeu(Reg::X2, Reg::X4, vout);
    asm.li(Reg::X5, ARRAY_BASE);
    asm.add(Reg::X5, Reg::X5, Reg::X2);
    asm.ld1(Reg::X6, Reg::X5, 0); // access the secret byte
    asm.alu(nda_isa::AluOp::Shr, Reg::X6, Reg::X6, Reg::X11);
    asm.andi(Reg::X6, Reg::X6, 1);
    // Bit test: only ever resolved on the wrong path -> never committed ->
    // never trained -> always predicted not-taken (skip the multiply).
    asm.bne(Reg::X6, Reg::X0, do_mul);
    asm.jmp(after);
    asm.bind(do_mul);
    asm.li(Reg::X7, 123);
    asm.mul(Reg::X8, Reg::X7, Reg::X7); // wakes the FPU iff bit == 1
    asm.bind(after);
    asm.nop();
    asm.bind(vout);
    asm.ret();

    // --- main -----------------------------------------------------------
    asm.bind(main);
    // Warm the secret line; probe array is unused (no cache channel!).
    asm.li(Reg::X2, SECRET_ADDR);
    asm.ld1(Reg::X3, Reg::X2, 0);
    asm.fence();

    // Per-bit measurement loop: bit index in X12.
    let bit_loop = asm.new_label();
    let train_loop = asm.new_label();
    let idle_loop = asm.new_label();
    asm.li(Reg::X12, 0);
    asm.bind(bit_loop);
    asm.mov(Reg::X11, Reg::X12); // bit index for the victim

    // 1. Idle the multiplier past its power-down threshold. Training
    //    calls never touch it (the in-bounds array is all zero bits), so
    //    the unit stays asleep until the transmission.
    asm.fence();
    asm.li(Reg::X9, IDLE_SPIN);
    asm.bind(idle_loop);
    asm.subi(Reg::X9, Reg::X9, 1);
    asm.bne(Reg::X9, Reg::X0, idle_loop);
    asm.fence();

    // 2. Mis-train and transmit in ONE loop (7 in-bounds calls, then the
    //    out-of-bounds call, selected branchlessly) so the bounds check
    //    sees identical branch history on every iteration — the same
    //    alignment trick as the Listing-1 PoC.
    asm.li(Reg::X9, 0);
    asm.bind(train_loop);
    asm.fence();
    util::emit_select_input(&mut asm, Reg::X9, MAL_INDEX, Reg::X2);
    asm.li(Reg::X3, ARRAY_SIZE_ADDR);
    asm.clflush(Reg::X3, 0);
    asm.call(victim);
    asm.addi(Reg::X9, Reg::X9, 1);
    asm.li(Reg::X26, TRAININGS);
    asm.bltu(Reg::X9, Reg::X26, train_loop);
    asm.fence();

    // 4. Receive: time a multiply.
    asm.rdcycle(Reg::X14);
    asm.li(Reg::X7, 77);
    asm.mul(Reg::X8, Reg::X7, Reg::X7);
    asm.rdcycle(Reg::X15);
    asm.sub(Reg::X16, Reg::X15, Reg::X14);
    asm.shli(Reg::X17, Reg::X12, 3);
    asm.li(Reg::X18, RESULTS_BASE);
    asm.add(Reg::X17, Reg::X17, Reg::X18);
    asm.st8(Reg::X16, Reg::X17, 0);
    asm.fence();

    asm.addi(Reg::X12, Reg::X12, 1);
    asm.li(Reg::X26, 8);
    asm.bltu(Reg::X12, Reg::X26, bit_loop);
    asm.halt();

    let mut p = asm.assemble().expect("netspectre assembles");
    p.data.push(nda_isa::DataInit {
        addr: ARRAY_SIZE_ADDR,
        bytes: ARRAY_LEN.to_le_bytes().to_vec(),
    });
    p.data.push(nda_isa::DataInit {
        addr: ARRAY_BASE,
        bytes: vec![0u8; ARRAY_LEN as usize],
    });
    p.data.push(nda_isa::DataInit {
        addr: SECRET_ADDR,
        bytes: vec![secret],
    });
    let _ = util::GUESS; // shared layout only; no cache recover loop here
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use nda_isa::Interp;

    #[test]
    fn architecturally_clean() {
        let p = program(0b0010_1010);
        let mut i = Interp::new(&p);
        let exit = i.run(20_000_000).expect("halts");
        assert!(exit.halted);
        assert_eq!(exit.faults, 0);
        // Eight per-bit timing slots were written.
        for b in 0..8u64 {
            assert!(
                i.mem.read(RESULTS_BASE + 8 * b, 8) > 0,
                "bit {b} never measured"
            );
        }
    }

    #[test]
    fn training_array_is_all_zero_bits() {
        // In-bounds training values must transmit nothing (all bits 0), or
        // the decoy would warm the FPU right before the idle spin ends.
        let p = program(7);
        let init = p.data.iter().find(|d| d.addr == ARRAY_BASE).unwrap();
        assert!(init.bytes.iter().all(|&b| b == 0));
    }
}
