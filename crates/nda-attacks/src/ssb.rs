//! Spectre v4: speculative store bypass (SSB).
//!
//! A store's address depends on a flushed (slow) pointer load, so it sits
//! unresolved while a younger load to the same location executes first and
//! reads the *stale* secret from memory. The stale value is transmitted
//! through the d-cache before the memory-order violation is detected and
//! the load replays with the architecturally-correct value (0).
//!
//! NDA's Bypass Restriction (paper §5.2) marks the bypassing load unsafe
//! until every older store address resolves, so the transmit never issues
//! — without forbidding the bypass itself (the performance win over
//! SSBD).

use crate::layout::*;
use crate::util;
use nda_isa::{Asm, Program, Reg};

/// Build the attack program for `secret`.
pub fn program(secret: u8) -> Program {
    let mut asm = Asm::new();
    util::emit_probe_flush(&mut asm);

    // Warm the stale-data line so the bypassing load is fast.
    asm.li(Reg::X5, SSB_DATA_ADDR);
    asm.ld1(Reg::X6, Reg::X5, 0);
    asm.fence();

    // The victim gadget.
    asm.li(Reg::X2, SSB_PTR_ADDR);
    asm.clflush(Reg::X2, 0); // pointer load becomes the slow resolver
    asm.ld8(Reg::X3, Reg::X2, 0); // X3 = SSB_DATA_ADDR, ~144 cycles
    asm.li(Reg::X4, 0);
    asm.st8(Reg::X4, Reg::X3, 0); // store, address unresolved for ~144 cycles
    asm.li(Reg::X5, SSB_DATA_ADDR);
    asm.ld1(Reg::X6, Reg::X5, 0); // bypasses the store: reads stale secret
    asm.shli(Reg::X6, Reg::X6, 9);
    asm.li(Reg::X7, PROBE_BASE);
    asm.add(Reg::X7, Reg::X7, Reg::X6);
    asm.ld1(Reg::X8, Reg::X7, 0); // transmit (before the replay squash)

    util::emit_recover(&mut asm);
    asm.halt();

    let mut p = asm.assemble().expect("ssb assembles");
    p.data.push(nda_isa::DataInit {
        addr: SSB_PTR_ADDR,
        bytes: SSB_DATA_ADDR.to_le_bytes().to_vec(),
    });
    p.data.push(nda_isa::DataInit {
        addr: SSB_DATA_ADDR,
        bytes: vec![secret],
    });
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use nda_isa::Interp;

    #[test]
    fn architectural_value_is_the_overwrite() {
        let p = program(42);
        let mut i = Interp::new(&p);
        let exit = i.run(10_000_000).expect("halts");
        assert!(exit.halted);
        // Architecturally the store lands before the load: X6 holds
        // 0 << 9 = 0, never the secret.
        assert_eq!(i.reg(Reg::X6), 0);
        assert_eq!(i.mem.read(SSB_DATA_ADDR, 1), 0, "secret overwritten");
    }
}
