//! Spectre v1 with the **BTB** covert channel — the paper's Listing 3 and
//! §3's headline demonstration that closing the d-cache is not enough.
//!
//! 256 distinct target functions are reachable through a single indirect
//! call site (`jumpToTarget`), so every invocation consults — and
//! overwrites — the *same* BTB entry. The wrong path calls
//! `jumpToTarget(secret)`, leaving `targets[secret]` in the BTB; the
//! squash does not revert it. Recovery times `jumpToTarget(guess)`: only
//! the correct guess predicts, every other guess pays the ~16-cycle
//! misprediction penalty (Fig 5).
//!
//! As the paper requires, the channel is cache-independent: the target
//! table, all 256 target functions and the secret line are warmed during
//! init and stay warm.

use crate::layout::*;
use crate::util;
use nda_isa::{Asm, Program, Reg};

/// Re-transmit rounds per guess (7 training + 1 malicious).
const ROUNDS_PER_GUESS: u64 = 8;

/// Build the attack program for `secret`.
pub fn program(secret: u8) -> Program {
    let mut asm = Asm::new();
    let main = asm.new_label();
    let jump_to_target = asm.new_label();
    let victim = asm.new_label();
    asm.jmp(main);

    // --- 256 distinct target functions --------------------------------
    let targets: Vec<_> = (0..256).map(|_| asm.new_label()).collect();
    for t in &targets {
        asm.bind(*t);
        asm.ret();
    }

    // --- jumpToTarget(index in X5): the single indirect call site ------
    // Non-leaf: the link register is saved on a software stack (X19).
    let ra = nda_isa::reg::RA;
    asm.bind(jump_to_target);
    asm.st8(ra, Reg::X19, 0);
    asm.subi(Reg::X19, Reg::X19, 8);
    asm.shli(Reg::X6, Reg::X5, 3);
    asm.li(Reg::X18, TARGET_TABLE);
    asm.add(Reg::X6, Reg::X6, Reg::X18);
    asm.ld8(Reg::X7, Reg::X6, 0);
    asm.call_ind(Reg::X7); // ONE PC -> one BTB entry for all targets
    asm.addi(Reg::X19, Reg::X19, 8);
    asm.ld8(ra, Reg::X19, 0);
    asm.ret();

    // --- victim(x in X2): Listing 3 lines 7-14 -------------------------
    asm.bind(victim);
    let vout = asm.new_label();
    asm.st8(ra, Reg::X19, 0);
    asm.subi(Reg::X19, Reg::X19, 8);
    asm.li(Reg::X3, ARRAY_SIZE_ADDR);
    asm.ld8(Reg::X4, Reg::X3, 0);
    asm.bgeu(Reg::X2, Reg::X4, vout);
    asm.li(Reg::X5, ARRAY_BASE);
    asm.add(Reg::X5, Reg::X5, Reg::X2);
    asm.ld1(Reg::X5, Reg::X5, 0); // phase 1: access secret
    asm.call(jump_to_target); // phase 2: transmit via the BTB
    asm.bind(vout);
    asm.addi(Reg::X19, Reg::X19, 8);
    asm.ld8(ra, Reg::X19, 0);
    asm.ret();

    // --- main ----------------------------------------------------------
    asm.bind(main);
    asm.li(Reg::X19, 0x00E0_0000); // software stack pointer
                                   // Build the target table from label fixups.
    for (k, t) in targets.iter().enumerate() {
        asm.li_label(Reg::X28, *t);
        asm.li(Reg::X18, TARGET_TABLE);
        asm.st8(Reg::X28, Reg::X18, (k * 8) as i64);
    }
    // Cache-warm everything the channel touches: table lines, target
    // functions' i-cache lines, the secret line (so no timing difference
    // can come from the cache hierarchy — the paper's §3 validation).
    let warm = asm.new_label();
    asm.li(Reg::X9, 0);
    asm.bind(warm);
    asm.mov(Reg::X5, Reg::X9);
    asm.call(jump_to_target);
    asm.addi(Reg::X9, Reg::X9, 1);
    asm.li(Reg::X26, 256);
    asm.bltu(Reg::X9, Reg::X26, warm);
    asm.li(Reg::X2, SECRET_ADDR);
    asm.ld1(Reg::X3, Reg::X2, 0);
    asm.fence();

    // --- per-guess: re-transmit, then time the probe (Listing 3 17-24) -
    let guess_loop = asm.new_label();
    let round_loop = asm.new_label();
    asm.li(Reg::X12, 0); // guess
    asm.bind(guess_loop);
    // Re-transmit: the recover probe overwrote the BTB entry, so leak
    // again (the paper notes the readout is destructive).
    asm.li(Reg::X9, 0);
    asm.bind(round_loop);
    // Serialise each round: all older trainings commit before the next
    // bounds check predicts (see spectre_v1.rs).
    asm.fence();
    util::emit_select_input(&mut asm, Reg::X9, MAL_INDEX, Reg::X2);
    asm.li(Reg::X3, ARRAY_SIZE_ADDR);
    asm.clflush(Reg::X3, 0);
    asm.call(victim);
    asm.addi(Reg::X9, Reg::X9, 1);
    asm.li(Reg::X26, ROUNDS_PER_GUESS);
    asm.bltu(Reg::X9, Reg::X26, round_loop);
    asm.fence();
    // Timed probe: fast iff the BTB predicts targets[guess].
    asm.rdcycle(Reg::X14);
    asm.mov(Reg::X5, Reg::X12);
    asm.call(jump_to_target);
    asm.rdcycle(Reg::X15);
    asm.sub(Reg::X16, Reg::X15, Reg::X14);
    asm.shli(Reg::X17, Reg::X12, 3);
    asm.li(Reg::X18, RESULTS_BASE);
    asm.add(Reg::X17, Reg::X17, Reg::X18);
    asm.st8(Reg::X16, Reg::X17, 0);
    asm.fence();
    asm.addi(Reg::X12, Reg::X12, 1);
    asm.li(Reg::X26, 256);
    asm.bltu(Reg::X12, Reg::X26, guess_loop);
    asm.halt();

    let mut p = asm.assemble().expect("spectre btb assembles");
    p.data.push(nda_isa::DataInit {
        addr: ARRAY_SIZE_ADDR,
        bytes: ARRAY_LEN.to_le_bytes().to_vec(),
    });
    p.data.push(nda_isa::DataInit {
        addr: ARRAY_BASE,
        bytes: vec![200u8; ARRAY_LEN as usize],
    });
    p.data.push(nda_isa::DataInit {
        addr: SECRET_ADDR,
        bytes: vec![secret],
    });
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use nda_isa::Interp;

    #[test]
    fn architecturally_clean() {
        let p = program(42);
        let mut i = Interp::new(&p);
        let exit = i.run(50_000_000).expect("halts");
        assert!(exit.halted);
        assert_eq!(exit.faults, 0);
    }

    #[test]
    fn one_indirect_call_site_only() {
        let p = program(1);
        let sites = p
            .insts
            .iter()
            .filter(|i| matches!(i, nda_isa::Inst::CallInd { .. }))
            .count();
        assert_eq!(sites, 1, "the covert channel requires a single BTB entry");
    }
}
