//! # Speculative-execution attack proof-of-concepts
//!
//! The paper's attack suite, written in SpecRISC and run on the simulated
//! cores:
//!
//! * [`spectre_v1`] — Listing 1: control-steering, d-cache covert channel.
//! * [`spectre_btb`] — Listing 3 / §3: control-steering, **BTB** covert
//!   channel (the paper's new channel; defeats cache-only defenses).
//! * [`ssb`] — Spectre v4: speculative store bypass.
//! * [`meltdown`] — Listing 2: chosen-code faulting load, d-cache channel.
//! * [`lazyfp`] — chosen-code special-register read (LazyFP / Meltdown
//!   v3a analogue) via `RdMsr`.
//!
//! Every attack follows the paper's three phases (Fig 3): *access* a secret
//! in wrong-path execution, *transmit* it through a micro-architectural
//! channel, *recover* it with architectural timing. Each module builds a
//! [`Program`] parameterised by the secret byte; [`run_attack`] executes it
//! on any evaluated [`Variant`] and [`detect::analyze`]s the recovered
//! timing vector.
//!
//! [`AttackKind::expected_blocked`] encodes the ground truth of the paper's
//! Tables 1-2 — which defense stops which attack — and the integration
//! tests assert the simulation reproduces that matrix exactly.
//!
//! ```no_run
//! use nda_attacks::{run_attack, AttackKind};
//! use nda_core::Variant;
//!
//! let insecure = run_attack(AttackKind::SpectreV1Cache, Variant::Ooo, 42);
//! assert!(insecure.leaked, "baseline OoO leaks");
//! let protected = run_attack(AttackKind::SpectreV1Cache, Variant::Permissive, 42);
//! assert!(!protected.leaked, "NDA blocks the leak");
//! ```

#![forbid(unsafe_code)]

pub mod detect;
pub mod layout;
pub mod lazyfp;
pub mod meltdown;
pub mod netspectre_fpu;
pub mod ret2spec;
pub mod smother;
pub mod spectre_btb;
pub mod spectre_v1;
pub mod spectre_v2_gpr;
pub mod ssb;
pub mod util;

pub use detect::{analyze, analyze_bits, AttackOutcome};
pub use layout::*;

use nda_core::config::{CoreModel, SimConfig};
use nda_core::{InOrderCore, OooCore, Variant};
use nda_isa::Program;
use std::fmt;

/// The five attack proof-of-concepts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttackKind {
    /// Spectre v1, cache covert channel (paper Listing 1).
    SpectreV1Cache,
    /// Spectre v1, BTB covert channel (paper Listing 3, §3).
    SpectreV1Btb,
    /// Spectre v4: speculative store bypass, cache channel.
    Ssb,
    /// Meltdown: chosen-code faulting load, cache channel (Listing 2).
    Meltdown,
    /// LazyFP / Meltdown v3a analogue: chosen-code privileged `RdMsr`.
    LazyFp,
    /// Spectre v2 against a GPR-resident secret (paper §4.2): BTB-steered
    /// indirect call, cache channel, arithmetic-only pre-processing.
    SpectreV2Gpr,
    /// ret2spec-style RAS steering of a GPR secret, cache channel.
    Ret2spec,
    /// NetSpectre-style leak through the FPU power state — no cache use
    /// at all.
    NetspectreFpu,
    /// SMoTherSpectre-style leak through divider port contention.
    Smother,
}

impl AttackKind {
    /// All attacks: Table 1 order, then this reproduction's extensions
    /// (GPR-targeting control-steering and the FPU power channel).
    pub fn all() -> [AttackKind; 9] {
        [
            AttackKind::SpectreV1Cache,
            AttackKind::SpectreV1Btb,
            AttackKind::Ssb,
            AttackKind::Meltdown,
            AttackKind::LazyFp,
            AttackKind::SpectreV2Gpr,
            AttackKind::Ret2spec,
            AttackKind::NetspectreFpu,
            AttackKind::Smother,
        ]
    }

    /// The paper's original five attacks (Table 1 exactly).
    pub fn paper_five() -> [AttackKind; 5] {
        [
            AttackKind::SpectreV1Cache,
            AttackKind::SpectreV1Btb,
            AttackKind::Ssb,
            AttackKind::Meltdown,
            AttackKind::LazyFp,
        ]
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            AttackKind::SpectreV1Cache => "Spectre v1 (cache)",
            AttackKind::SpectreV1Btb => "Spectre v1 (BTB)",
            AttackKind::Ssb => "Spectre v4 (SSB)",
            AttackKind::Meltdown => "Meltdown",
            AttackKind::LazyFp => "LazyFP (rdmsr)",
            AttackKind::SpectreV2Gpr => "Spectre v2 (GPR)",
            AttackKind::Ret2spec => "ret2spec (GPR)",
            AttackKind::NetspectreFpu => "NetSpectre (FPU)",
            AttackKind::Smother => "SMoTher (ports)",
        }
    }

    /// The paper's class: control-steering or chosen-code (§3.1).
    pub fn is_chosen_code(self) -> bool {
        matches!(self, AttackKind::Meltdown | AttackKind::LazyFp)
    }

    /// Build the attack program for a given secret byte.
    pub fn program(self, secret: u8) -> Program {
        match self {
            AttackKind::SpectreV1Cache => spectre_v1::program(secret),
            AttackKind::SpectreV1Btb => spectre_btb::program(secret),
            AttackKind::Ssb => ssb::program(secret),
            AttackKind::Meltdown => meltdown::program(secret),
            AttackKind::LazyFp => lazyfp::program(secret),
            AttackKind::SpectreV2Gpr => spectre_v2_gpr::program(secret),
            AttackKind::Ret2spec => ret2spec::program(secret),
            AttackKind::NetspectreFpu => netspectre_fpu::program(secret),
            AttackKind::Smother => smother::program(secret),
        }
    }

    /// Attack-specific simulator requirements (the NetSpectre channel
    /// needs the FPU power model, which is off in the Table 3 defaults).
    pub fn tweak_config(self, cfg: &mut SimConfig) {
        if self == AttackKind::NetspectreFpu {
            cfg.core.fpu_power_model = true;
        }
    }

    /// Timing margin (cycles) separating a hit from a miss in this
    /// attack's covert channel.
    pub fn margin(self) -> u64 {
        match self {
            // d-cache: DRAM(~144) vs L1(4).
            AttackKind::SpectreV1Cache
            | AttackKind::Ssb
            | AttackKind::Meltdown
            | AttackKind::LazyFp
            | AttackKind::SpectreV2Gpr
            | AttackKind::Ret2spec => 40,
            // BTB: ~16-cycle squash penalty.
            AttackKind::SpectreV1Btb => 6,
            // FPU: the wake-up penalty (20 cycles by default).
            AttackKind::NetspectreFpu => 8,
            // Divider drain: a handful of cycles of residual occupancy.
            AttackKind::Smother => 5,
        }
    }

    /// Guess values the analysis must ignore because the attack itself
    /// pollutes them: the SSB replay re-transmits with the architectural
    /// value 0, and the Spectre PoCs' in-bounds training calls
    /// architecturally transmit the decoy array value 200. A real attacker
    /// knows both and discounts them the same way.
    pub fn polluted_guesses(self) -> &'static [u8] {
        match self {
            AttackKind::Ssb => &[0],
            AttackKind::SpectreV1Cache | AttackKind::SpectreV1Btb | AttackKind::SpectreV2Gpr => {
                &[200]
            }
            _ => &[],
        }
    }

    /// The secret-data labeling for the static analyzer
    /// (`nda-analyze`): which state the victim considers confidential.
    /// This is the analyzer's only input besides the program — it gets no
    /// hints about gadget structure.
    pub fn secret_spec(self) -> nda_isa::SecretSpec {
        use nda_isa::SecretSpec;
        match self {
            // Control-steering attacks on the in-process secret byte.
            AttackKind::SpectreV1Cache
            | AttackKind::SpectreV1Btb
            | AttackKind::NetspectreFpu
            | AttackKind::Smother => SecretSpec::empty().with_range(SECRET_ADDR, 1),
            // SSB reads the stale secret cell the victim overwrites.
            AttackKind::Ssb => SecretSpec::empty().with_range(SSB_DATA_ADDR, 1),
            // Chosen-code attacks: all privileged state is secret.
            AttackKind::Meltdown => SecretSpec::empty().with_privileged(),
            AttackKind::LazyFp => SecretSpec::empty().with_msr(SECRET_MSR),
            // GPR-resident secrets are loaded once at setup from these
            // cells.
            AttackKind::SpectreV2Gpr => {
                SecretSpec::empty().with_range(spectre_v2_gpr::GPR_SECRETS, 16)
            }
            AttackKind::Ret2spec => SecretSpec::empty().with_range(ret2spec::GPR_SECRET_CELL, 8),
        }
    }

    /// Ground truth of the paper's Tables 1-2: is this attack *blocked* on
    /// the given variant?
    pub fn expected_blocked(self, v: Variant) -> bool {
        use AttackKind::*;
        use Variant::*;
        match v {
            // The insecure baseline blocks nothing.
            Ooo => false,
            // In-order executes no wrong path at all.
            InOrder => true,
            // NDA propagation policies block all memory-secret
            // control-steering attacks regardless of covert channel; BR is
            // needed for SSB; GPR secrets need *strict* (permissive marks
            // only loads unsafe, and a GPR transmit is pure arithmetic);
            // only load restriction stops chosen-code attacks.
            Permissive => matches!(
                self,
                SpectreV1Cache | SpectreV1Btb | NetspectreFpu | Smother
            ),
            Strict => matches!(
                self,
                SpectreV1Cache | SpectreV1Btb | NetspectreFpu | Smother | SpectreV2Gpr | Ret2spec
            ),
            PermissiveBr => {
                matches!(
                    self,
                    SpectreV1Cache | SpectreV1Btb | NetspectreFpu | Smother | Ssb
                )
            }
            StrictBr => matches!(
                self,
                SpectreV1Cache
                    | SpectreV1Btb
                    | NetspectreFpu
                    | Smother
                    | SpectreV2Gpr
                    | Ret2spec
                    | Ssb
            ),
            // Load restriction stops every *load-sourced* secret (all the
            // paper's attacks) but a GPR secret's arithmetic transmit
            // still reaches the cache.
            RestrictedLoads => !matches!(self, SpectreV2Gpr | Ret2spec),
            FullProtection => true,
            // InvisiSpec closes only the d-cache channel: the BTB and FPU
            // channels leak through. Its Spectre variant covers only
            // control-flow speculation (not SSB or chosen code), but that
            // includes the GPR attacks' cache transmits.
            InvisiSpecSpectre => {
                matches!(self, SpectreV1Cache | SpectreV2Gpr | Ret2spec)
            }
            InvisiSpecFuture => {
                matches!(
                    self,
                    SpectreV1Cache | Ssb | Meltdown | LazyFp | SpectreV2Gpr | Ret2spec
                )
            }
            // Delay-on-miss holds speculative L1-missing loads: blocks
            // cache-miss transmits under control speculation, nothing else.
            DelayOnMiss => matches!(self, SpectreV1Cache | SpectreV2Gpr | Ret2spec),
            // Taint tracking gates *transmitting* uses of speculatively
            // loaded data: the memory-secret control-steering attacks die
            // (their tainted address reaches a load/store/BTB transmit).
            // GPR-resident secrets were architecturally committed long
            // before the gadget runs — never tainted, never gated. The
            // contention channels (FPU wake-up, divider occupancy) steer
            // through a *conditional branch on tainted data*, and STT's
            // explicit-channel gate deliberately leaves branch conditions
            // unchecked — the documented implicit-channel gap.
            SttSpectre | ShadowBindingEager | ShadowBindingLazy => {
                matches!(self, SpectreV1Cache | SpectreV1Btb)
            }
            // The futuristic threat model additionally taints chosen-code
            // (faulting / MSR) and memory-order speculation sources.
            SttFuturistic => {
                matches!(
                    self,
                    SpectreV1Cache | SpectreV1Btb | Ssb | Meltdown | LazyFp
                )
            }
        }
    }
}

impl fmt::Display for AttackKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Cycle budget for attack programs (the recover loop times 256 cold
/// misses, and the in-order baseline is slow).
pub const ATTACK_MAX_CYCLES: u64 = 80_000_000;

/// Run `kind` with `secret` on `v` and analyse the leak.
///
/// # Panics
///
/// Panics if the program does not halt within the cycle budget (attack
/// programs are self-contained and always architecturally terminate).
pub fn run_attack(kind: AttackKind, v: Variant, secret: u8) -> AttackOutcome {
    let program = kind.program(secret);
    let mut cfg = SimConfig::for_variant(v);
    kind.tweak_config(&mut cfg);
    let bitwise = matches!(kind, AttackKind::NetspectreFpu | AttackKind::Smother);
    let slots = if bitwise { 8 } else { 256 };
    let timings: Vec<u64> = match cfg.model {
        CoreModel::OutOfOrder => {
            let mut c = OooCore::new(cfg, &program);
            c.run(ATTACK_MAX_CYCLES)
                .unwrap_or_else(|e| panic!("{kind} on {v}: {e}"));
            (0..slots)
                .map(|g| c.mem.read(layout::RESULTS_BASE + 8 * g, 8))
                .collect()
        }
        CoreModel::InOrder => {
            let mut c = InOrderCore::new(cfg, &program);
            c.run(ATTACK_MAX_CYCLES)
                .unwrap_or_else(|e| panic!("{kind} on {v}: {e}"));
            (0..slots)
                .map(|g| c.mem.read(layout::RESULTS_BASE + 8 * g, 8))
                .collect()
        }
    };
    if bitwise {
        // FPU power: set bit -> unit awake -> fast. Port contention: set
        // bit -> divider draining -> slow.
        let fast_is_one = kind == AttackKind::NetspectreFpu;
        analyze_bits(&timings, secret, kind.margin(), fast_is_one)
    } else {
        analyze(&timings, secret, kind.margin(), kind.polluted_guesses())
    }
}
