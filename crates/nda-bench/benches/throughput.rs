//! Host-throughput tracking: how fast is the simulator itself?
//!
//! Runs the Fig 7 sweep twice — once serially (always one job) and once
//! on the worker pool at `max(NDA_JOBS, available_parallelism)` — checks
//! the two results are bit-identical (panics on divergence; the CI smoke
//! relies on this), probes sampled simulation against full detail on the
//! pinned workloads (wall-clock speedup + CPI-within-CI check), and emits
//! `BENCH_throughput.json` at the workspace root with per-variant
//! simulated-cycles-per-host-second and the end-to-end wall times, so the
//! perf trajectory is tracked in-repo.
//!
//! `NDA_JOBS` caps only the *serial-vs-parallel probe floor*: the
//! parallel leg never runs below the host's parallelism, so setting
//! `NDA_JOBS=1` (as the CI smoke does to keep the sweep small) no longer
//! degenerates the probe into running the same serial sweep twice. The
//! serial leg is always one job.
//!
//! The serial-vs-parallel `speedup` field always carries the measured
//! ratio; when the host has a single core the accompanying
//! `speedup_caveat` field flags it as a degenerate measurement (jobs
//! time-sharing one core, not parallel scaling) instead of suppressing
//! the number — `host_parallelism` in `params` lets readers judge for
//! themselves.
//!
//! A `checkpoint_store` section probes the persistent checkpoint store:
//! one cold sampled run populates it, a warm run hits it (asserted — the
//! warm path must do zero fast-forward instructions) and must be
//! bit-identical to the cold one; the cold/warm wall clocks quantify what
//! the store saves.
//!
//! Knobs: `NDA_SAMPLES` / `NDA_ITERS` / `NDA_JOBS` as usual, plus
//! `NDA_THROUGHPUT_OUT` to redirect the JSON.

use nda_bench::{sweep, SweepConfig, SweepResults};
use nda_core::{
    collect_checkpoints_cached, run_sampled, run_sampled_with, CheckpointStore, SampledParams,
    SimConfig, Variant,
};
use std::time::Instant;

/// Single-thread throughput measured at the seed of the perf PR
/// (commit a27c02c, release build without LTO, `nda-sim run mcf
/// --iters 200000` / `run gcc --iters 100000` wall clock on one host
/// core) — the fixed reference point every later run is compared
/// against.
const BASELINE_PRE_PR: &[(&str, f64)] = &[
    ("mcf_sim_cycles_per_sec", 1.057e6),
    ("gcc_sim_cycles_per_sec", 0.755e6),
];
const BASELINE_COMMIT: &str = "a27c02c";

/// Fixed sizing for the single-thread probe: long enough to amortise
/// program-build overhead (throughput is iters-independent past ~10k),
/// short enough for the CI smoke. Deliberately NOT tied to `NDA_ITERS`
/// so the recorded figure is comparable across runs and hosts.
const PROBE_ITERS: u64 = 20_000;

/// One single-thread mcf run on the OoO baseline, directly comparable
/// to the pre-PR `mcf_sim_cycles_per_sec` constant.
fn single_thread_probe() -> (u64, f64) {
    let w = nda_workloads::by_name("mcf").expect("mcf workload exists");
    let prog = (w.build)(&nda_workloads::WorkloadParams {
        seed: 1,
        iters: PROBE_ITERS,
    });
    let r = nda_core::run_variant(Variant::Ooo, &prog, 2_000_000_000).expect("mcf halts");
    (
        r.stats.cycles,
        r.sim_cycles_per_host_sec().expect("host time captured"),
    )
}

/// One pinned workload measured full-detail and sampled, back to back on
/// the same program and the OoO baseline.
struct SampledProbe {
    workload: &'static str,
    full_wall_s: f64,
    full_cpi: f64,
    sampled_wall_s: f64,
    /// Wall clock of the master functional pass (fast-forward + warming).
    ff_wall_s: f64,
    /// Wall clock of the detailed warm+measure windows.
    detail_wall_s: f64,
    /// Full-detail wall clock over sampled wall clock.
    speedup: f64,
    cpi_mean: f64,
    cpi_ci95: f64,
    windows: usize,
    detailed_insts: u64,
    total_insts: u64,
    /// `|sampled mean − full CPI| ≤ sampled CI95`.
    within_ci: bool,
}

/// Run one pinned workload in full detail and sampled (default U/W/D
/// schedule) and compare wall clocks and CPIs.
fn sampled_probe(workload: &'static str, params: SampledParams) -> SampledProbe {
    let w = nda_workloads::by_name(workload).expect("pinned workload exists");
    let prog = (w.build)(&nda_workloads::WorkloadParams {
        seed: 1,
        iters: PROBE_ITERS,
    });

    let t = Instant::now();
    let full = nda_core::run_variant(Variant::Ooo, &prog, 2_000_000_000).expect("full run halts");
    let full_wall_s = t.elapsed().as_secs_f64();

    let t = Instant::now();
    let r = run_sampled(
        SimConfig::for_variant(Variant::Ooo),
        &prog,
        params,
        2_000_000_000,
    )
    .expect("sampled run halts");
    let sampled_wall_s = t.elapsed().as_secs_f64();

    assert_eq!(
        r.regs, full.regs,
        "{workload}: sampled changed architecture"
    );
    let info = r.sampled.expect("workload long enough to sample");
    let full_cpi = full.cpi();
    SampledProbe {
        workload,
        full_wall_s,
        full_cpi,
        sampled_wall_s,
        ff_wall_s: info.ff_wall_ns as f64 / 1e9,
        detail_wall_s: info.detail_wall_ns as f64 / 1e9,
        speedup: full_wall_s / sampled_wall_s.max(1e-12),
        cpi_mean: info.cpi.mean,
        cpi_ci95: info.cpi.ci95,
        windows: info.windows,
        detailed_insts: info.detailed_insts,
        total_insts: info.fast_forwarded_insts,
        within_ci: (info.cpi.mean - full_cpi).abs() <= info.cpi.ci95,
    }
}

/// Cold-vs-warm wall clock of one sampled run through the persistent
/// checkpoint store.
struct StoreProbe {
    workload: &'static str,
    /// Sampled run that populated the store (fast-forward + windows).
    cold_wall_s: f64,
    /// Sampled run that hit the store (load + windows, zero fast-forward).
    warm_wall_s: f64,
    /// Cold wall clock over warm wall clock.
    speedup: f64,
}

/// Run one pinned workload sampled twice through a fresh store: the first
/// pass is a miss and populates it, the second must be a warm hit,
/// skipping the master functional pass, with bit-identical checkpoints and
/// CPI. Both properties are asserted — the CI smoke relies on this.
fn store_probe(workload: &'static str, params: SampledParams) -> StoreProbe {
    let w = nda_workloads::by_name(workload).expect("pinned workload exists");
    let prog = (w.build)(&nda_workloads::WorkloadParams {
        seed: 1,
        iters: PROBE_ITERS,
    });
    let dir = std::env::temp_dir().join(format!("nda-ckpt-throughput-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = CheckpointStore::open(&dir).expect("checkpoint store opens");
    let cfg = SimConfig::for_variant(Variant::Ooo);

    let t = Instant::now();
    let (cold_set, cold_hit) =
        collect_checkpoints_cached(Some(&store), &cfg, &prog, params, 2_000_000_000)
            .expect("cold collection halts");
    let cold_r = run_sampled_with(cfg, &prog, &cold_set, params).expect("cold windows run");
    let cold_wall_s = t.elapsed().as_secs_f64();
    assert!(!cold_hit, "{workload}: fresh store reported a warm hit");

    let t = Instant::now();
    let (warm_set, warm_hit) =
        collect_checkpoints_cached(Some(&store), &cfg, &prog, params, 2_000_000_000)
            .expect("warm collection loads");
    let warm_r = run_sampled_with(cfg, &prog, &warm_set, params).expect("warm windows run");
    let warm_wall_s = t.elapsed().as_secs_f64();
    assert!(
        warm_hit,
        "{workload}: store missed on identical inputs — warm path must \
         do zero fast-forward instructions"
    );
    assert_eq!(
        cold_set, warm_set,
        "{workload}: store round-trip changed the checkpoints"
    );
    let (ci, wi) = (
        cold_r.sampled.expect("cold sampled info"),
        warm_r.sampled.expect("warm sampled info"),
    );
    assert_eq!(
        ci.cpi.mean.to_bits(),
        wi.cpi.mean.to_bits(),
        "{workload}: warm-store CPI diverged from cold"
    );
    let _ = std::fs::remove_dir_all(&dir);
    StoreProbe {
        workload,
        cold_wall_s,
        warm_wall_s,
        speedup: cold_wall_s / warm_wall_s.max(1e-12),
    }
}

fn assert_bit_identical(a: &SweepResults, b: &SweepResults) {
    assert_eq!(a.workloads, b.workloads, "workload order diverged");
    assert_eq!(a.variants, b.variants, "variant order diverged");
    for (w, (ra, rb)) in a.cells.iter().zip(&b.cells).enumerate() {
        for (v, (ca, cb)) in ra.iter().zip(rb).enumerate() {
            let tag = format!("{}/{}", a.workloads[w], a.variants[v]);
            assert_eq!(ca.cpi, cb.cpi, "{tag}: CPI diverged between job counts");
            assert_eq!(ca.runs.len(), cb.runs.len(), "{tag}: run count diverged");
            for (s, (x, y)) in ca.runs.iter().zip(&cb.runs).enumerate() {
                assert_eq!(x.stats, y.stats, "{tag}/sample{s}: SimStats diverged");
                assert_eq!(
                    x.mem_stats, y.mem_stats,
                    "{tag}/sample{s}: MemStats diverged"
                );
                assert_eq!(x.regs, y.regs, "{tag}/sample{s}: registers diverged");
                assert_eq!(x.halted, y.halted, "{tag}/sample{s}: halt state diverged");
            }
        }
    }
}

fn main() {
    let cfg = SweepConfig::from_env();
    let host = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let workloads = nda_workloads::all();
    let variants = Variant::all().to_vec();
    // The parallel leg must actually be parallel: NDA_JOBS=1 (the CI
    // smoke default) used to turn the probe into the same serial sweep
    // run twice. Floor the parallel leg at the host's parallelism; the
    // serial leg below is always pinned to one job.
    let par_jobs = cfg.jobs.max(host);
    println!(
        "throughput: {} workloads x {} variants x {} samples, {} iters, \
         parallel leg {par_jobs} jobs (NDA_JOBS={}, host parallelism {host})",
        workloads.len(),
        variants.len(),
        cfg.samples,
        cfg.iters,
        cfg.jobs
    );

    let t0 = Instant::now();
    let serial = sweep(
        workloads,
        &variants,
        SweepConfig {
            jobs: 1,
            ..cfg.clone()
        },
    );
    let serial_wall = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    let parallel = sweep(
        workloads,
        &variants,
        SweepConfig {
            jobs: par_jobs,
            ..cfg.clone()
        },
    );
    let parallel_wall = t1.elapsed().as_secs_f64();

    assert_bit_identical(&serial, &parallel);
    println!("determinism: serial and {par_jobs}-job sweeps bit-identical");

    // Always report the measured ratio; when the host has a single core
    // the parallel leg time-shares it, so flag the measurement with a
    // caveat instead of suppressing the number — a reader armed with
    // `host_parallelism` can weigh it.
    let speedup = serial_wall / parallel_wall.max(1e-12);
    let speedup_caveat = (host <= 1).then_some("no host parallelism: jobs time-shared one core");
    match speedup_caveat {
        None => println!(
            "sweep wall time: serial {serial_wall:.3}s, {par_jobs} jobs {parallel_wall:.3}s \
             ({speedup:.2}x)"
        ),
        Some(caveat) => println!(
            "sweep wall time: serial {serial_wall:.3}s, {par_jobs} jobs {parallel_wall:.3}s \
             ({speedup:.2}x — {caveat})"
        ),
    }
    println!(
        "{:<22}{:>16}{:>14}{:>18}",
        "variant", "sim cycles", "host s", "sim cycles/s"
    );
    let mut variant_lines = String::new();
    for (v, variant) in variants.iter().enumerate() {
        let cycles = serial.variant_sim_cycles(v);
        let host_s = serial.variant_host_ns(v) as f64 / 1e9;
        let cps = serial.variant_sim_cycles_per_sec(v).unwrap_or(0.0);
        println!(
            "{:<22}{cycles:>16}{host_s:>14.3}{cps:>18.0}",
            variant.name()
        );
        if v > 0 {
            variant_lines.push_str(",\n");
        }
        variant_lines.push_str(&format!(
            "    {{\"name\": \"{}\", \"sim_cycles\": {cycles}, \"host_ns\": {}, \
             \"sim_cycles_per_sec\": {cps:.1}}}",
            variant.name(),
            serial.variant_host_ns(v)
        ));
    }

    let (probe_cycles, probe_cps) = single_thread_probe();
    println!(
        "single-thread probe: mcf x {PROBE_ITERS} iters, {probe_cycles} cycles, \
         {probe_cps:.0} sim cycles/s (pre-PR baseline {:.0})",
        BASELINE_PRE_PR[0].1
    );

    // Sampled vs full detail on the pinned workloads: the CPI agreement is
    // a deterministic property of the simulator (both runs are seeded,
    // host-independent computations), so it is asserted; the wall-clock
    // speedup depends on the host and is recorded, not asserted.
    //
    // The probe widens the sampling interval to 100 k (from the 50 k
    // default): at PROBE_ITERS the workloads still yield enough windows
    // for a tight CI, and halving the detail fraction roughly doubles the
    // measured speedup margin.
    let sp = SampledParams::new(100_000, 2_000, 2_000);
    let mut probe_lines = String::new();
    for (i, name) in ["mcf", "gcc"].iter().enumerate() {
        let p = sampled_probe(name, sp);
        println!(
            "sampled probe: {} full {:.2}s (CPI {:.3}), sampled {:.2}s ({:.1}x; \
             ff {:.3}s + detail {:.3}s), CPI {:.3} ± {:.3} over {} windows \
             ({} of {} insts detailed) — within CI: {}",
            p.workload,
            p.full_wall_s,
            p.full_cpi,
            p.sampled_wall_s,
            p.speedup,
            p.ff_wall_s,
            p.detail_wall_s,
            p.cpi_mean,
            p.cpi_ci95,
            p.windows,
            p.detailed_insts,
            p.total_insts,
            p.within_ci
        );
        assert!(
            p.within_ci,
            "{}: sampled CPI {:.4} ± {:.4} excludes full-detail CPI {:.4}",
            p.workload, p.cpi_mean, p.cpi_ci95, p.full_cpi
        );
        if i > 0 {
            probe_lines.push_str(",\n");
        }
        probe_lines.push_str(&format!(
            "      {{\"workload\": \"{}\", \"full_wall_s\": {:.3}, \"full_cpi\": {:.4}, \
             \"sampled_wall_s\": {:.3}, \"ff_wall_s\": {:.3}, \"detail_wall_s\": {:.3}, \
             \"speedup\": {:.2}, \"cpi_mean\": {:.4}, \
             \"cpi_ci95\": {:.4}, \"windows\": {}, \"detailed_insts\": {}, \
             \"total_insts\": {}, \"within_ci\": {}}}",
            p.workload,
            p.full_wall_s,
            p.full_cpi,
            p.sampled_wall_s,
            p.ff_wall_s,
            p.detail_wall_s,
            p.speedup,
            p.cpi_mean,
            p.cpi_ci95,
            p.windows,
            p.detailed_insts,
            p.total_insts,
            p.within_ci
        ));
    }

    // Cold-vs-warm checkpoint store: the warm run must hit (zero
    // fast-forward) and be bit-identical; wall clocks quantify the win.
    let mut store_lines = String::new();
    for (i, name) in ["mcf", "gcc"].iter().enumerate() {
        let p = store_probe(name, sp);
        println!(
            "store probe: {} cold {:.3}s, warm {:.3}s ({:.1}x) — warm hit, bit-identical",
            p.workload, p.cold_wall_s, p.warm_wall_s, p.speedup
        );
        if i > 0 {
            store_lines.push_str(",\n");
        }
        store_lines.push_str(&format!(
            "      {{\"workload\": \"{}\", \"cold_wall_s\": {:.3}, \"warm_wall_s\": {:.3}, \
             \"speedup\": {:.2}, \"warm_hit\": true, \"bit_identical\": true}}",
            p.workload, p.cold_wall_s, p.warm_wall_s, p.speedup
        ));
    }

    let mut baseline = String::new();
    for &(k, x) in BASELINE_PRE_PR {
        baseline.push_str(&format!(",\n    \"{k}\": {x:.1}"));
    }
    let caveat_json = speedup_caveat.map_or_else(|| "null".to_string(), |c| format!("\"{c}\""));
    let json = format!(
        "{{\n\
         \x20 \"schema\": \"nda-bench-throughput-v3\",\n\
         \x20 \"params\": {{\"samples\": {}, \"iters\": {}, \"jobs\": {par_jobs}, \
         \"host_parallelism\": {host}}},\n\
         \x20 \"sweep_wall_s\": {{\"serial\": {serial_wall:.3}, \"parallel\": {parallel_wall:.3}, \
         \"speedup\": {speedup:.3}, \"speedup_caveat\": {caveat_json}}},\n\
         \x20 \"single_thread\": {{\"workload\": \"mcf\", \"variant\": \"OoO\", \
         \"iters\": {PROBE_ITERS}, \"sim_cycles\": {probe_cycles}, \
         \"sim_cycles_per_sec\": {probe_cps:.1}}},\n\
         \x20 \"sampled\": {{\n    \"params\": {{\"sample_every\": {}, \"warm_insts\": {}, \
         \"detail_insts\": {}}},\n    \"probes\": [\n{probe_lines}\n    ]\n  }},\n\
         \x20 \"checkpoint_store\": {{\n    \"probes\": [\n{store_lines}\n    ]\n  }},\n\
         \x20 \"variants\": [\n{variant_lines}\n  ],\n\
         \x20 \"baseline_pre_pr\": {{\n    \"commit\": \"{BASELINE_COMMIT}\"{baseline}\n  }}\n\
         }}\n",
        cfg.samples, cfg.iters, sp.sample_every, sp.warm_insts, sp.detail_insts
    );
    let out = std::env::var("NDA_THROUGHPUT_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_throughput.json", env!("CARGO_MANIFEST_DIR")));
    std::fs::write(&out, json).expect("write BENCH_throughput.json");
    println!("wrote {out}");
}
