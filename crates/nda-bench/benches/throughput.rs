//! Host-throughput tracking: how fast is the simulator itself?
//!
//! Runs the Fig 7 sweep twice — once serially (`NDA_JOBS=1`) and once on
//! the worker pool (`NDA_JOBS`, default: available parallelism) — checks
//! the two results are bit-identical (panics on divergence; the CI smoke
//! relies on this), and emits `BENCH_throughput.json` at the workspace
//! root with per-variant simulated-cycles-per-host-second and the
//! end-to-end wall times, so the perf trajectory is tracked in-repo.
//!
//! Knobs: `NDA_SAMPLES` / `NDA_ITERS` / `NDA_JOBS` as usual, plus
//! `NDA_THROUGHPUT_OUT` to redirect the JSON.

use nda_bench::{sweep, SweepConfig, SweepResults};
use nda_core::Variant;
use std::time::Instant;

/// Single-thread throughput measured at the seed of the perf PR
/// (commit a27c02c, release build without LTO, `nda-sim run mcf
/// --iters 200000` / `run gcc --iters 100000` wall clock on one host
/// core) — the fixed reference point every later run is compared
/// against.
const BASELINE_PRE_PR: &[(&str, f64)] = &[
    ("mcf_sim_cycles_per_sec", 1.057e6),
    ("gcc_sim_cycles_per_sec", 0.755e6),
];
const BASELINE_COMMIT: &str = "a27c02c";

/// Fixed sizing for the single-thread probe: long enough to amortise
/// program-build overhead (throughput is iters-independent past ~10k),
/// short enough for the CI smoke. Deliberately NOT tied to `NDA_ITERS`
/// so the recorded figure is comparable across runs and hosts.
const PROBE_ITERS: u64 = 20_000;

/// One single-thread mcf run on the OoO baseline, directly comparable
/// to the pre-PR `mcf_sim_cycles_per_sec` constant.
fn single_thread_probe() -> (u64, f64) {
    let w = nda_workloads::by_name("mcf").expect("mcf workload exists");
    let prog = (w.build)(&nda_workloads::WorkloadParams {
        seed: 1,
        iters: PROBE_ITERS,
    });
    let r = nda_core::run_variant(Variant::Ooo, &prog, 2_000_000_000).expect("mcf halts");
    (
        r.stats.cycles,
        r.sim_cycles_per_host_sec().expect("host time captured"),
    )
}

fn assert_bit_identical(a: &SweepResults, b: &SweepResults) {
    assert_eq!(a.workloads, b.workloads, "workload order diverged");
    assert_eq!(a.variants, b.variants, "variant order diverged");
    for (w, (ra, rb)) in a.cells.iter().zip(&b.cells).enumerate() {
        for (v, (ca, cb)) in ra.iter().zip(rb).enumerate() {
            let tag = format!("{}/{}", a.workloads[w], a.variants[v]);
            assert_eq!(ca.cpi, cb.cpi, "{tag}: CPI diverged between job counts");
            assert_eq!(ca.runs.len(), cb.runs.len(), "{tag}: run count diverged");
            for (s, (x, y)) in ca.runs.iter().zip(&cb.runs).enumerate() {
                assert_eq!(x.stats, y.stats, "{tag}/sample{s}: SimStats diverged");
                assert_eq!(
                    x.mem_stats, y.mem_stats,
                    "{tag}/sample{s}: MemStats diverged"
                );
                assert_eq!(x.regs, y.regs, "{tag}/sample{s}: registers diverged");
                assert_eq!(x.halted, y.halted, "{tag}/sample{s}: halt state diverged");
            }
        }
    }
}

fn main() {
    let cfg = SweepConfig::from_env();
    let host = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let workloads = nda_workloads::all();
    let variants = Variant::all().to_vec();
    println!(
        "throughput: {} workloads x {} variants x {} samples, {} iters, \
         NDA_JOBS={} (host parallelism {host})",
        workloads.len(),
        variants.len(),
        cfg.samples,
        cfg.iters,
        cfg.jobs
    );

    let t0 = Instant::now();
    let serial = sweep(workloads, &variants, SweepConfig { jobs: 1, ..cfg });
    let serial_wall = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    let parallel = sweep(workloads, &variants, cfg);
    let parallel_wall = t1.elapsed().as_secs_f64();

    assert_bit_identical(&serial, &parallel);
    println!(
        "determinism: serial and NDA_JOBS={} sweeps bit-identical",
        cfg.jobs
    );

    let speedup = serial_wall / parallel_wall.max(1e-12);
    println!(
        "sweep wall time: serial {serial_wall:.3}s, {} jobs {parallel_wall:.3}s ({speedup:.2}x)",
        cfg.jobs
    );
    println!(
        "{:<22}{:>16}{:>14}{:>18}",
        "variant", "sim cycles", "host s", "sim cycles/s"
    );
    let mut variant_lines = String::new();
    for (v, variant) in variants.iter().enumerate() {
        let cycles = serial.variant_sim_cycles(v);
        let host_s = serial.variant_host_ns(v) as f64 / 1e9;
        let cps = serial.variant_sim_cycles_per_sec(v).unwrap_or(0.0);
        println!(
            "{:<22}{cycles:>16}{host_s:>14.3}{cps:>18.0}",
            variant.name()
        );
        if v > 0 {
            variant_lines.push_str(",\n");
        }
        variant_lines.push_str(&format!(
            "    {{\"name\": \"{}\", \"sim_cycles\": {cycles}, \"host_ns\": {}, \
             \"sim_cycles_per_sec\": {cps:.1}}}",
            variant.name(),
            serial.variant_host_ns(v)
        ));
    }

    let (probe_cycles, probe_cps) = single_thread_probe();
    println!(
        "single-thread probe: mcf x {PROBE_ITERS} iters, {probe_cycles} cycles, \
         {probe_cps:.0} sim cycles/s (pre-PR baseline {:.0})",
        BASELINE_PRE_PR[0].1
    );

    let mut baseline = String::new();
    for &(k, x) in BASELINE_PRE_PR {
        baseline.push_str(&format!(",\n    \"{k}\": {x:.1}"));
    }
    let json = format!(
        "{{\n\
         \x20 \"schema\": \"nda-bench-throughput-v1\",\n\
         \x20 \"params\": {{\"samples\": {}, \"iters\": {}, \"jobs\": {}, \
         \"host_parallelism\": {host}}},\n\
         \x20 \"sweep_wall_s\": {{\"serial\": {serial_wall:.3}, \"parallel\": {parallel_wall:.3}, \
         \"speedup\": {speedup:.3}}},\n\
         \x20 \"single_thread\": {{\"workload\": \"mcf\", \"variant\": \"OoO\", \
         \"iters\": {PROBE_ITERS}, \"sim_cycles\": {probe_cycles}, \
         \"sim_cycles_per_sec\": {probe_cps:.1}}},\n\
         \x20 \"variants\": [\n{variant_lines}\n  ],\n\
         \x20 \"baseline_pre_pr\": {{\n    \"commit\": \"{BASELINE_COMMIT}\"{baseline}\n  }}\n\
         }}\n",
        cfg.samples, cfg.iters, cfg.jobs
    );
    let out = std::env::var("NDA_THROUGHPUT_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_throughput.json", env!("CARGO_MANIFEST_DIR")));
    std::fs::write(&out, json).expect("write BENCH_throughput.json");
    println!("wrote {out}");
}
