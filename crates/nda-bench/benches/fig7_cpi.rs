//! Fig 7: CPI of all ten configurations on every workload, normalised to
//! the insecure OoO baseline, with 95 % confidence intervals over seeded
//! samples (the SMARTS-style methodology of §6.1).
//!
//! Expected shape (paper): permissive ~1.11x, permissive+BR ~1.22x,
//! strict ~1.36x, strict+BR ~1.45x, restricted loads ~2.0x, full
//! protection ~2.25x, in-order worst; InvisiSpec-Spectre ~1.08x,
//! InvisiSpec-Future ~1.33x. Absolute factors differ on our synthetic
//! kernels; the ordering and rough magnitudes are the reproduction target.

use nda_bench::{fmt_ci, sweep, SweepConfig};
use nda_core::Variant;
use nda_workloads::all;

fn main() {
    let cfg = SweepConfig::from_env();
    println!(
        "Fig 7: CPI normalised to OoO ({} samples x {} iterations per cell)",
        cfg.samples, cfg.iters
    );
    let variants = Variant::all().to_vec();
    let results = sweep(all(), &variants, cfg);

    // Header.
    print!("{:<12}", "workload");
    for v in &variants {
        print!("{:>20}", v.name());
    }
    println!();

    for (w, wname) in results.workloads.iter().enumerate() {
        print!("{wname:<12}");
        for v in 0..variants.len() {
            print!("{:>20.3}", results.normalized_cpi(w, v));
        }
        println!();
    }

    println!();
    print!("{:<12}", "geomean");
    for v in 0..variants.len() {
        print!("{:>20.3}", results.geomean_normalized(v));
    }
    println!();
    print!("{:<12}", "overhead%");
    for v in 0..variants.len() {
        print!("{:>19.1}%", results.overhead_pct(v));
    }
    println!("\n");

    println!("absolute CPI with 95% CI:");
    for (w, wname) in results.workloads.iter().enumerate() {
        print!("{wname:<12}");
        for v in 0..variants.len() {
            print!("{:>20}", fmt_ci(&results.cell(w, v).cpi));
        }
        println!();
    }
    println!(
        "worst per-cell relative CI: {:.2}% of mean",
        results.max_relative_error() * 100.0
    );

    // Shape checks mirroring the paper's ordering claims.
    let idx = |v: Variant| variants.iter().position(|x| *x == v).unwrap();
    let g = |v: Variant| results.geomean_normalized(idx(v));
    assert!(
        g(Variant::Permissive) < g(Variant::Strict),
        "permissive must beat strict"
    );
    assert!(
        g(Variant::Strict) < g(Variant::FullProtection),
        "strict must beat full protection"
    );
    assert!(
        g(Variant::FullProtection) < g(Variant::InOrder),
        "NDA must beat in-order"
    );
    assert!(g(Variant::InvisiSpecSpectre) < g(Variant::InvisiSpecFuture));
    println!("shape check passed: OoO < permissive < strict < full protection < in-order");
}
