//! Fig 9a-d: aggregated pipeline statistics over the workload suite for
//! the six NDA policies and the two baselines.
//!
//! * 9a — cycle breakdown: commit / memory stalls / backend stalls /
//!   frontend stalls, normalised to the OoO baseline's total cycles.
//! * 9b — memory-level parallelism (geomean; Chou et al. definition).
//! * 9c — instruction-level parallelism (geomean; <= 1.0 on in-order).
//! * 9d — mean dispatch-to-issue latency (NDA adds 4-39 cycles in the
//!   paper; overall CPI impact stays modest).

use nda_bench::{bar, cpi_stack_table, sweep, SweepConfig};
use nda_core::Variant;
use nda_stats::{geomean, CpiClass, CpiStack};
use nda_workloads::all;

fn main() {
    let cfg = SweepConfig::from_env();
    let variants = Variant::nda_sweep().to_vec();
    println!(
        "Fig 9a-d: pipeline statistics ({} samples x {} iterations per cell)\n",
        cfg.samples, cfg.iters
    );
    let results = sweep(all(), &variants, cfg);
    let nw = results.workloads.len();

    // ---- 9a: cycle breakdown --------------------------------------------
    println!("Fig 9a: cycle breakdown (fraction of each variant's cycles; bars vs OoO total)");
    println!(
        "{:<20}{:>9}{:>9}{:>9}{:>9}{:>11}",
        "variant", "commit", "memory", "backend", "frontend", "rel.cycles"
    );
    let base_cycles: f64 = (0..nw)
        .map(|w| results.cell(w, 0).mean_of(|r| r.stats.cycles as f64))
        .sum();
    for (v, variant) in variants.iter().enumerate() {
        let mut parts = [0.0f64; 4];
        let mut total = 0.0;
        for w in 0..nw {
            let c = results.cell(w, v);
            parts[0] += c.mean_of(|r| r.stats.commit_cycles as f64);
            parts[1] += c.mean_of(|r| r.stats.memory_stall_cycles as f64);
            parts[2] += c.mean_of(|r| r.stats.backend_stall_cycles as f64);
            parts[3] += c.mean_of(|r| r.stats.frontend_stall_cycles as f64);
            total += c.mean_of(|r| r.stats.cycles as f64);
        }
        let rel = total / base_cycles;
        println!(
            "{:<20}{:>9.3}{:>9.3}{:>9.3}{:>9.3}{:>10.2}x  |{}",
            variant.name(),
            parts[0] / total,
            parts[1] / total,
            parts[2] / total,
            parts[3] / total,
            rel,
            bar(rel, 4.0, 40)
        );
    }

    // ---- 9a': fine-grained stacked CPI ----------------------------------
    // The top-down refinement of 9a: suite-aggregated cycles charged to
    // each of the eleven CPI classes. `nda` is the cycle cost of deferred
    // tag broadcasts specifically, separated from generic backend stalls.
    println!("\nFig 9a': top-down CPI stack (fraction of each variant's cycles)");
    let mut stack_rows: Vec<(String, CpiStack)> = Vec::new();
    for (v, variant) in variants.iter().enumerate() {
        let mut stack = CpiStack::new();
        for class in CpiClass::all() {
            let cycles: f64 = (0..nw)
                .map(|w| {
                    results
                        .cell(w, v)
                        .mean_of(|r| r.stats.cpi_stack.get(class) as f64)
                })
                .sum();
            stack.add(class, cycles.round() as u64);
        }
        stack_rows.push((variant.name().to_string(), stack));
    }
    print!("{}", cpi_stack_table(&stack_rows));
    let nda_ooo = stack_rows
        .iter()
        .find(|(n, _)| n == Variant::Ooo.name())
        .map_or(0, |(_, s)| s.get(CpiClass::NdaDelay));
    assert_eq!(nda_ooo, 0, "baseline OoO must charge zero nda-delay cycles");

    // ---- 9b: MLP ---------------------------------------------------------
    println!("\nFig 9b: memory-level parallelism (geomean over workloads with off-chip misses)");
    for (v, variant) in variants.iter().enumerate() {
        let vals: Vec<f64> = (0..nw)
            .filter_map(|w| {
                let m = results
                    .cell(w, v)
                    .mean_of(|r| r.mem_stats.mlp.unwrap_or(0.0));
                (m > 0.0).then_some(m)
            })
            .collect();
        let g = geomean(&vals);
        println!("{:<20}{:>8.3}  |{}", variant.name(), g, bar(g, 4.0, 40));
    }

    // ---- 9c: ILP ---------------------------------------------------------
    println!("\nFig 9c: instruction-level parallelism (geomean)");
    let mut ilps = Vec::new();
    for (v, variant) in variants.iter().enumerate() {
        let vals: Vec<f64> = (0..nw)
            .map(|w| results.cell(w, v).mean_of(|r| r.stats.ilp()))
            .collect();
        let g = geomean(&vals);
        ilps.push((variant, g));
        println!("{:<20}{:>8.3}  |{}", variant.name(), g, bar(g, 4.0, 40));
    }

    // ---- 9d: dispatch-to-issue latency ------------------------------------
    println!("\nFig 9d: mean dispatch-to-issue latency (cycles)");
    for (v, variant) in variants.iter().enumerate() {
        let vals: Vec<f64> = (0..nw)
            .map(|w| {
                results
                    .cell(w, v)
                    .mean_of(|r| r.stats.avg_dispatch_to_issue())
            })
            .collect();
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        println!(
            "{:<20}{:>8.2}  |{}",
            variant.name(),
            mean,
            bar(mean, 50.0, 40)
        );
    }

    // Shape checks.
    let inorder_ilp = ilps
        .iter()
        .find(|(v, _)| **v == Variant::InOrder)
        .unwrap()
        .1;
    assert!(
        inorder_ilp <= 1.0 + 1e-9,
        "in-order ILP cannot exceed 1.0 (Fig 9c)"
    );
    let ooo_ilp = ilps.iter().find(|(v, _)| **v == Variant::Ooo).unwrap().1;
    assert!(ooo_ilp > inorder_ilp, "OoO must exceed in-order ILP");
    println!("\nshape check passed: in-order ILP <= 1.0 < OoO ILP");
}
