//! Ablations of the design choices DESIGN.md §7 calls out:
//!
//! 1. **Speculative vs commit-time BTB update** — reverting BTB updates to
//!    commit time closes the BTB covert channel even on the insecure OoO
//!    (and is the kind of per-structure fix the paper argues cannot scale
//!    to every structure).
//! 2. **SSBD-style bypass disable vs NDA's Bypass Restriction** — both
//!    block SSB, but disabling the bypass outright costs more than BR on
//!    store-heavy code.
//! 3. **Meltdown flaw knob** — with the implementation flaw fixed, the
//!    chosen-code attacks die on any core; NDA's load restriction is the
//!    blanket defense for the flaws not yet known.
//! 4. **Next-line prefetcher** — predictive structures don't change any
//!    security outcome under NDA.
//! 5. **Predictor quality** — how the branch mix and predictor flavour
//!    shape strict propagation's cost.

use nda_attacks::{analyze, AttackKind, RESULTS_BASE};
use nda_bench::SweepConfig;
use nda_core::config::SimConfig;
use nda_core::{run_with_config, NdaPolicy, OooCore};
use nda_workloads::{by_name, WorkloadParams};

fn run_attack_with(cfg: SimConfig, kind: AttackKind, secret: u8) -> bool {
    let program = kind.program(secret);
    let mut c = OooCore::new(cfg, &program);
    c.run(nda_attacks::ATTACK_MAX_CYCLES).expect("attack halts");
    let timings: Vec<u64> = (0..256)
        .map(|g| c.mem.read(RESULTS_BASE + 8 * g, 8))
        .collect();
    analyze(&timings, secret, kind.margin(), kind.polluted_guesses()).leaked
}

fn main() {
    let secret = 42u8;
    let sweep_cfg = SweepConfig::from_env();

    // ---- 1: BTB update point -------------------------------------------
    println!("Ablation 1: BTB update point vs the BTB covert channel");
    let spec = run_attack_with(SimConfig::ooo(), AttackKind::SpectreV1Btb, secret);
    let mut commit_cfg = SimConfig::ooo();
    commit_cfg.core.btb.speculative_update = false;
    let commit = run_attack_with(commit_cfg, AttackKind::SpectreV1Btb, secret);
    println!("  speculative update (real hardware): leaked = {spec}");
    println!("  commit-time update (per-structure fix): leaked = {commit}");
    assert!(spec && !commit);
    println!("  -> closing one structure works, but the paper's point is that");
    println!("     there is always another structure; NDA cuts the data flow instead.\n");

    // ---- 2: SSBD vs Bypass Restriction ----------------------------------
    println!("Ablation 2: SSBD-style bypass disable vs NDA Bypass Restriction");
    let wl = by_name("lbm").expect("streaming workload exists");
    let params = WorkloadParams {
        seed: 7,
        iters: sweep_cfg.iters,
    };
    let prog = (wl.build)(&params);
    let base = run_with_config(SimConfig::ooo(), &prog, 2_000_000_000)
        .unwrap()
        .cpi();
    let mut ssbd = SimConfig::ooo();
    ssbd.core.speculative_store_bypass = false;
    let ssbd_cpi = run_with_config(ssbd, &prog, 2_000_000_000).unwrap().cpi();
    let mut br = SimConfig::ooo();
    br.policy = NdaPolicy::permissive_br();
    let br_cpi = run_with_config(br, &prog, 2_000_000_000).unwrap().cpi();
    println!("  insecure OoO             : CPI {base:.3}");
    println!(
        "  SSBD (bypass disabled)   : CPI {ssbd_cpi:.3} ({:+.1}%)",
        (ssbd_cpi / base - 1.0) * 100.0
    );
    println!(
        "  NDA permissive+BR        : CPI {br_cpi:.3} ({:+.1}%)",
        (br_cpi / base - 1.0) * 100.0
    );
    // Both block SSB:
    let mut ssbd_atk = SimConfig::ooo();
    ssbd_atk.core.speculative_store_bypass = false;
    assert!(
        !run_attack_with(ssbd_atk, AttackKind::Ssb, secret),
        "SSBD must block SSB"
    );
    let mut br_atk = SimConfig::ooo();
    br_atk.policy = NdaPolicy::permissive_br();
    assert!(
        !run_attack_with(br_atk, AttackKind::Ssb, secret),
        "BR must block SSB"
    );
    println!("  both block the SSB attack; BR additionally blocks every other");
    println!("  control-steering channel at its quoted cost.\n");

    // ---- 3: the Meltdown flaw knob ---------------------------------------
    println!("Ablation 3: the modelled Meltdown implementation flaw");
    let flawed = run_attack_with(SimConfig::ooo(), AttackKind::Meltdown, secret);
    let mut fixed = SimConfig::ooo();
    fixed.core.meltdown_flaw = false;
    let fixed_leak = run_attack_with(fixed, AttackKind::Meltdown, secret);
    let mut lr = SimConfig::ooo();
    lr.policy = NdaPolicy::restricted_loads();
    let lr_leak = run_attack_with(lr, AttackKind::Meltdown, secret);
    println!("  flawed hardware, no NDA        : leaked = {flawed}");
    println!("  fixed hardware (point patch)   : leaked = {fixed_leak}");
    println!("  flawed hardware + load restrict: leaked = {lr_leak}");
    assert!(flawed && !fixed_leak && !lr_leak);
    println!("  -> load restriction defends even unpatched (or future-flawed) parts.\n");

    // ---- 4: prefetching under NDA ----------------------------------------
    println!("Ablation 4: a next-line prefetcher (one of the §2 predictive structures)");
    let wl = by_name("lbm").expect("streaming workload exists");
    let prog = (wl.build)(&WorkloadParams {
        seed: 9,
        iters: sweep_cfg.iters,
    });
    let mut pf_off = SimConfig::ooo();
    pf_off.policy = NdaPolicy::permissive();
    let mut pf_on = pf_off;
    pf_on.mem.next_line_prefetch = true;
    let off = run_with_config(pf_off, &prog, 2_000_000_000).unwrap();
    let on = run_with_config(pf_on, &prog, 2_000_000_000).unwrap();
    println!("  permissive, no prefetch : CPI {:.3}", off.cpi());
    println!(
        "  permissive, prefetch on : CPI {:.3} ({:+.1}%, {} prefetches)",
        on.cpi(),
        (on.cpi() / off.cpi() - 1.0) * 100.0,
        on.mem_stats.prefetches
    );
    // The security result is prefetcher-independent: NDA cuts the transmit
    // before any address can be formed, so there is nothing to prefetch.
    let mut atk_cfg = SimConfig::ooo();
    atk_cfg.policy = NdaPolicy::permissive();
    atk_cfg.mem.next_line_prefetch = true;
    assert!(
        !run_attack_with(atk_cfg, AttackKind::SpectreV1Cache, secret),
        "NDA must hold with the prefetcher enabled"
    );
    let mut insecure_pf = SimConfig::ooo();
    insecure_pf.mem.next_line_prefetch = true;
    assert!(
        run_attack_with(insecure_pf, AttackKind::SpectreV1Cache, secret),
        "the insecure core still leaks with the prefetcher enabled"
    );
    println!("  attack outcomes unchanged: insecure leaks, NDA blocks.\n");

    // ---- 5: predictor quality vs NDA overhead ----------------------------
    println!("Ablation 5: direction-predictor quality vs NDA's strict overhead");
    println!("  (better prediction -> fewer/shorter unresolved-branch windows)");
    use nda_predict::PredictorKind;
    println!(
        "  {:<12}{:<14}{:>12}{:>14}{:>11}{:>12}",
        "workload", "predictor", "OoO CPI", "strict CPI", "overhead", "mispredicts"
    );
    for wname in ["exchange2", "xz"] {
        let wl = by_name(wname).expect("workload exists");
        let prog = (wl.build)(&WorkloadParams {
            seed: 5,
            iters: sweep_cfg.iters,
        });
        for kind in [
            PredictorKind::Bimodal,
            PredictorKind::Gshare,
            PredictorKind::Tournament,
        ] {
            let mut base = SimConfig::ooo();
            base.core.predictor_kind = kind;
            let mut strict = base;
            strict.policy = NdaPolicy::strict();
            let b = run_with_config(base, &prog, 2_000_000_000).unwrap();
            let s = run_with_config(strict, &prog, 2_000_000_000).unwrap();
            println!(
                "  {wname:<12}{kind:<14?}{:>12.3}{:>14.3}{:>10.1}%{:>12}",
                b.cpi(),
                s.cpi(),
                (s.cpi() / b.cpi() - 1.0) * 100.0,
                b.stats.branch_mispredicts
            );
        }
    }
    println!("  -> NDA's strict cost tracks the branch mix: data-dependent");
    println!("     branches (xz) keep their windows regardless of predictor;");
    println!("     pattern-friendly code separates the predictors.");
}
