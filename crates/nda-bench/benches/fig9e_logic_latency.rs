//! Fig 9e: sensitivity of CPI to extra latency in NDA's deferred-broadcast
//! logic. The paper adds 0/1/2 cycles between an instruction becoming safe
//! and its tag broadcast and finds the CPI impact under permissive
//! propagation is small (< 3.6 % for one cycle).

use nda_bench::{sweep, SweepConfig};
use nda_core::config::SimConfig;
use nda_core::{run_with_config, NdaPolicy, Variant};
use nda_workloads::{all, WorkloadParams};

fn main() {
    let cfg = SweepConfig::from_env();
    println!(
        "Fig 9e: CPI vs NDA broadcast-logic latency, permissive propagation ({} samples x {} iters)",
        cfg.samples, cfg.iters
    );

    // Baseline normalisation: insecure OoO.
    let base = sweep(all(), &[Variant::Ooo], cfg.clone());

    println!(
        "{:<28}{:>14}{:>16}",
        "configuration", "norm. CPI", "vs same-cycle"
    );
    let mut same_cycle_geo = 0.0;
    for delay in [0u64, 1, 2] {
        let mut ratios = Vec::new();
        for (w, workload) in all().iter().enumerate() {
            let mut cpis = Vec::new();
            for s in 0..cfg.samples {
                let params = WorkloadParams {
                    seed: 1000 + s,
                    iters: cfg.iters,
                };
                let prog = (workload.build)(&params);
                let mut sim = SimConfig::ooo();
                sim.policy = NdaPolicy::permissive();
                sim.core.broadcast_extra_delay = delay;
                let r = run_with_config(sim, &prog, 2_000_000_000)
                    .unwrap_or_else(|e| panic!("{}: {e}", workload.name));
                cpis.push(r.cpi());
            }
            let mean = cpis.iter().sum::<f64>() / cpis.len() as f64;
            ratios.push(mean / base.cell(w, 0).cpi.mean);
        }
        let geo = nda_stats::geomean(&ratios);
        if delay == 0 {
            same_cycle_geo = geo;
        }
        let vs_same = (geo / same_cycle_geo - 1.0) * 100.0;
        println!(
            "{:<28}{:>14.3}{:>15.2}%",
            format!("permissive, {delay}-cycle delay"),
            geo,
            vs_same
        );
        if delay == 1 {
            // The paper reports < 3.6% CPI impact for a one-cycle delay;
            // allow generous headroom for the synthetic workloads.
            assert!(
                vs_same < 10.0,
                "one-cycle delay impact implausibly large ({vs_same:.2}%)"
            );
        }
    }
    println!("\n(paper: a one-cycle delay reduces CPI by less than 3.6%)");
}
