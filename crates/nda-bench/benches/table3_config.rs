//! Table 3: the gem5 simulation configuration, reproduced by our
//! simulator's defaults. Prints the configuration and self-checks it
//! against the paper's numbers.

use nda_core::CoreConfig;
use nda_mem::MemHierConfig;

fn main() {
    let core = CoreConfig::haswell_like();
    let mem = MemHierConfig::haswell_like();

    println!("Table 3: simulation configuration (paper values in brackets)");
    println!("=============================================================");
    println!("Architecture        x86-64-like SpecRISC at 2.0 GHz");
    println!(
        "Core (OoO)          {}-issue, no SMT, {} LQ entries, {} SQ entries [8 / 32 / 32]",
        core.issue_width, core.lq_entries, core.sq_entries
    );
    println!(
        "                    {} ROB entries, {} BTB entries, 16 RAS entries [192 / 4096 / 16]",
        core.rob_entries, core.btb.entries
    );
    println!("Core (in-order)     blocking TimingSimpleCPU analogue");
    println!(
        "L1-I/L1-D cache     {} KiB, {} B line, {}-way SA, {}-cycle RT, 1 port [32K/64/8/4]",
        mem.l1i.size_bytes / 1024,
        mem.l1i.line_bytes,
        mem.l1i.ways,
        mem.l1i.latency
    );
    println!(
        "L2 cache            {} MiB, {} B line, {}-way SA, {}-cycle RT [2M/64/16/40]",
        mem.l2.size_bytes / (1024 * 1024),
        mem.l2.line_bytes,
        mem.l2.ways,
        mem.l2.latency
    );
    println!(
        "DRAM                {} cycles response latency (50 ns at 2 GHz) [50 ns]",
        mem.dram_latency
    );

    // Self-check: the defaults must match the paper.
    assert_eq!(core.issue_width, 8);
    assert_eq!(core.rob_entries, 192);
    assert_eq!(core.lq_entries, 32);
    assert_eq!(core.sq_entries, 32);
    assert_eq!(core.btb.entries, 4096);
    assert_eq!(mem.l1d.size_bytes, 32 * 1024);
    assert_eq!(mem.l1d.ways, 8);
    assert_eq!(mem.l1d.latency, 4);
    assert_eq!(mem.l2.size_bytes, 2 * 1024 * 1024);
    assert_eq!(mem.l2.ways, 16);
    assert_eq!(mem.l2.latency, 40);
    assert_eq!(mem.dram_latency, 100);
    println!("\nself-check: all parameters match Table 3");
}
