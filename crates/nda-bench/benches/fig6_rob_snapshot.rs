//! Fig 6: an ROB snapshot during a Listing-1-like sequence under the four
//! NDA policy families, showing which completed entries may broadcast.
//!
//! The program mirrors the paper's example: a call, a (slow) bounds load,
//! the bounds-check branch, then the wrong-path access/pre-process/
//! transmit chain. We step each policy to the same cycle — while the
//! branch is still unresolved — and render the per-entry state.

use nda_core::{NdaPolicy, OooCore, RobCellState, SimConfig, Variant};
use nda_isa::{Asm, Program, Reg};

fn listing1_like() -> Program {
    let mut asm = Asm::new();
    let victim = asm.new_label();
    let main = asm.new_label();
    let vout = asm.new_label();
    asm.jmp(main);
    asm.bind(victim);
    asm.li(Reg::X3, 0x51_0000);
    asm.ld8(Reg::X4, Reg::X3, 0); // load array_size (flushed: slow)
    asm.bgeu(Reg::X2, Reg::X4, vout); // if (x < array_size)
    asm.li(Reg::X5, 0x50_0000);
    asm.add(Reg::X5, Reg::X5, Reg::X2);
    asm.ld1(Reg::X6, Reg::X5, 0); // access phase: arr[x]
    asm.andi(Reg::X6, Reg::X6, 0xff); // preprocess
    asm.shli(Reg::X6, Reg::X6, 9); // s *= 512
    asm.li(Reg::X7, 0x200_0000);
    asm.add(Reg::X7, Reg::X7, Reg::X6);
    asm.ld1(Reg::X8, Reg::X7, 0); // transmit phase
    asm.bind(vout);
    asm.ret();
    asm.bind(main);
    asm.li(Reg::X2, 4);
    asm.li(Reg::X3, 0x51_0000);
    asm.clflush(Reg::X3, 0); // widen the window
    asm.call(victim);
    asm.halt();
    let mut p = asm.assemble().unwrap();
    p.data.push(nda_isa::DataInit {
        addr: 0x51_0000,
        bytes: 16u64.to_le_bytes().to_vec(),
    });
    p.data.push(nda_isa::DataInit {
        addr: 0x50_0000,
        bytes: vec![7u8; 16],
    });
    p
}

fn cell(state: RobCellState) -> &'static str {
    match state {
        RobCellState::NotReady => "  <not ready>        ",
        RobCellState::Executing => "  ready & executing  ",
        RobCellState::CompletedUnsafe => "  COMPLETED, unsafe  ",
        RobCellState::CompletedBroadcast => "  completed+broadcast",
    }
}

fn main() {
    println!("Fig 6: ROB snapshot during Listing-1 execution, per NDA policy");
    println!("(snapshot taken while the bounds-check branch is unresolved)\n");
    let program = listing1_like();
    let policies: [(&str, NdaPolicy); 4] = [
        ("(a) strict propagation", NdaPolicy::strict()),
        ("(b) permissive propagation", NdaPolicy::permissive()),
        ("(c) load restriction", NdaPolicy::restricted_loads()),
        (
            "(d) strict + load restriction",
            NdaPolicy::full_protection(),
        ),
    ];
    let mut transmit_issued_under = Vec::new();
    for (name, policy) in policies {
        let mut cfg = SimConfig::for_variant(Variant::Ooo);
        cfg.policy = policy;
        let mut core = OooCore::new(cfg, &program);
        // Step until the wrong-path window is in full swing: the bounds
        // branch is in the ROB and unresolved (it waits on the flushed
        // array_size load) and the transmit chain has been dispatched.
        for _ in 0..5_000 {
            core.step_cycle();
            let view = core.rob_view();
            if view.iter().any(|v| v.unresolved_branch) && view.len() >= 9 {
                break;
            }
        }
        // Let the wrong path make progress inside the ~144-cycle window so
        // the per-policy differences are visible (who completed, who may
        // broadcast, who is stuck waiting for an unsafe producer).
        for _ in 0..40 {
            core.step_cycle();
        }
        println!("{name}  [policy: {policy}]  (cycle {})", core.cycle());
        let mut transmit_issued = false;
        for v in core.rob_view() {
            let marker = if v.unresolved_branch {
                "  <-- unresolved branch"
            } else {
                ""
            };
            println!(
                "  @{:>3}  {:28} {}{}",
                v.pc,
                v.disasm,
                cell(v.state),
                marker
            );
            if v.disasm.starts_with("ld1") && v.pc == 10 {
                transmit_issued = v.state != RobCellState::NotReady;
            }
        }
        println!();
        transmit_issued_under.push((name, transmit_issued));
    }
    // The paper's point: under every NDA policy the transmit load (the
    // last ld1) must still be waiting, because its operands never became
    // visible.
    for (name, issued) in transmit_issued_under {
        println!("transmit load issued under {name}: {issued}");
        assert!(
            !issued,
            "{name}: transmit must be blocked while the branch is unresolved"
        );
    }
}
