//! Table 2: NDA propagation policies, the attacks they prevent, and their
//! measured overhead vs the insecure OoO baseline.
//!
//! Paper overheads for reference: permissive 10.7%, permissive+BR 22.3%,
//! strict 36.1%, strict+BR 45%, load restriction 100%, full protection
//! 125%, InvisiSpec-Spectre 7.6%, InvisiSpec-Future 32.7%. Absolute
//! numbers differ on the synthetic workloads; the ordering must hold.

use nda_attacks::AttackKind;
use nda_bench::{sweep, SweepConfig};
use nda_core::Variant;
use nda_workloads::all;

fn protection_summary(v: Variant) -> String {
    let blocked: Vec<&str> = AttackKind::all()
        .iter()
        .filter(|k| k.expected_blocked(v))
        .map(|k| k.name())
        .collect();
    if blocked.is_empty() {
        "none".to_string()
    } else if blocked.len() == AttackKind::all().len() {
        "all documented attacks".to_string()
    } else {
        blocked.join(", ")
    }
}

fn main() {
    let cfg = SweepConfig::from_env();
    println!(
        "Table 2: policies, protection, and overhead vs OoO ({} samples x {} iters)\n",
        cfg.samples, cfg.iters
    );
    let variants = Variant::all().to_vec();
    let results = sweep(all(), &variants, cfg);

    println!(
        "{:<4}{:<22}{:>12}   defeats (verified by table1/test suite)",
        "row", "mechanism", "overhead"
    );
    let rows: [(usize, Variant); 10] = [
        (0, Variant::Ooo),
        (1, Variant::Permissive),
        (2, Variant::PermissiveBr),
        (3, Variant::Strict),
        (4, Variant::StrictBr),
        (5, Variant::RestrictedLoads),
        (6, Variant::FullProtection),
        (7, Variant::InvisiSpecSpectre),
        (8, Variant::InvisiSpecFuture),
        (9, Variant::DelayOnMiss),
    ];
    for (row, v) in rows {
        let idx = variants.iter().position(|x| *x == v).unwrap();
        println!(
            "{:<4}{:<22}{:>11.1}%   {}",
            row,
            v.name(),
            results.overhead_pct(idx),
            protection_summary(v)
        );
    }
    let inorder_idx = variants
        .iter()
        .position(|x| *x == Variant::InOrder)
        .unwrap();
    println!(
        "\nin-order baseline: {:.1}% overhead ({}x OoO)",
        results.overhead_pct(inorder_idx),
        results.geomean_normalized(inorder_idx)
    );

    // Ordering checks (the Table 2 monotonicity).
    let g = |v: Variant| results.geomean_normalized(variants.iter().position(|x| *x == v).unwrap());
    assert!(g(Variant::Permissive) <= g(Variant::PermissiveBr));
    assert!(g(Variant::PermissiveBr) <= g(Variant::StrictBr));
    assert!(g(Variant::Strict) <= g(Variant::StrictBr));
    assert!(g(Variant::StrictBr) <= g(Variant::FullProtection) * 1.02);
    assert!(g(Variant::FullProtection) < g(Variant::InOrder));
    println!("ordering check passed: permissive <= +BR <= strict+BR <= full < in-order");
}
