//! Fig 4: Spectre v1 per-guess recovery timing on the insecure OoO core,
//! via the cache covert channel (blue squares in the paper) and the BTB
//! covert channel (orange circles).
//!
//! The cache channel shows a ~140-cycle dip at the secret byte; the BTB
//! channel a ~16-cycle dip. Output is a CSV series (guess, cache, btb)
//! followed by the summary deltas.

use nda_attacks::{run_attack, AttackKind};
use nda_core::Variant;

fn main() {
    let secret = 42u8;
    println!("Fig 4: Spectre v1 covert-channel readout, insecure OoO, secret byte {secret}");
    let cache = run_attack(AttackKind::SpectreV1Cache, Variant::Ooo, secret);
    let btb = run_attack(AttackKind::SpectreV1Btb, Variant::Ooo, secret);

    println!("guess,cache_cycles,btb_cycles");
    for g in 0..256 {
        println!("{g},{},{}", cache.timings[g], btb.timings[g]);
    }

    let d_cache = cache.median.saturating_sub(cache.timings[secret as usize]);
    let d_btb = btb.median.saturating_sub(btb.timings[secret as usize]);
    println!(
        "\ncache channel: recovered={:?} leaked={} delta={} cycles (paper: ~140)",
        cache.recovered, cache.leaked, d_cache
    );
    println!(
        "btb   channel: recovered={:?} leaked={} delta={} cycles (paper: ~16)",
        btb.recovered, btb.leaked, d_btb
    );

    assert!(
        cache.leaked && btb.leaked,
        "Fig 4 requires both channels to leak on insecure OoO"
    );
}
