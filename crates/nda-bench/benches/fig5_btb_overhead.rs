//! Fig 5: the BTB covert channel's signal — the cost of an indirect-branch
//! misprediction. A correctly-predicted indirect call (BTB hit with the
//! right target) retires quickly; a mispredicted one pays the
//! squash-and-refetch penalty the paper measures at ~16 cycles on gem5.

use nda_core::{OooCore, SimConfig};
use nda_isa::{Asm, Program, Reg};

const RESULTS: u64 = 0x30_0000;
const TABLE: u64 = 0x60_0000;

/// Timed pair: a predicted and a mispredicted indirect call through the
/// same site.
fn program() -> Program {
    let mut asm = Asm::new();
    let ra = nda_isa::reg::RA;
    let main = asm.new_label();
    let jtt = asm.new_label();
    asm.jmp(main);

    // Two distinct targets.
    let t0 = asm.here_label();
    asm.ret();
    let t1 = asm.here_label();
    asm.ret();

    // jumpToTarget(idx in X5), single indirect site, software stack in X19.
    asm.bind(jtt);
    asm.st8(ra, Reg::X19, 0);
    asm.subi(Reg::X19, Reg::X19, 8);
    asm.shli(Reg::X6, Reg::X5, 3);
    asm.li(Reg::X18, TABLE);
    asm.add(Reg::X6, Reg::X6, Reg::X18);
    asm.ld8(Reg::X7, Reg::X6, 0);
    asm.call_ind(Reg::X7);
    asm.addi(Reg::X19, Reg::X19, 8);
    asm.ld8(ra, Reg::X19, 0);
    asm.ret();

    asm.bind(main);
    asm.li(Reg::X19, 0xE0_0000);
    asm.li(Reg::X18, TABLE);
    asm.li_label(Reg::X28, t0);
    asm.st8(Reg::X28, Reg::X18, 0);
    asm.li_label(Reg::X28, t1);
    asm.st8(Reg::X28, Reg::X18, 8);
    // Warm everything, leave BTB -> t0.
    for idx in [1u64, 0, 0, 0] {
        asm.li(Reg::X5, idx);
        asm.call(jtt);
    }
    asm.fence();
    // Correct prediction: BTB holds t0, call t0.
    asm.rdcycle(Reg::X14);
    asm.li(Reg::X5, 0);
    asm.call(jtt);
    asm.rdcycle(Reg::X15);
    asm.sub(Reg::X16, Reg::X15, Reg::X14);
    asm.li(Reg::X17, RESULTS);
    asm.st8(Reg::X16, Reg::X17, 0);
    asm.fence();
    // Restore BTB -> t0, then mispredict with t1.
    asm.li(Reg::X5, 0);
    asm.call(jtt);
    asm.fence();
    asm.rdcycle(Reg::X14);
    asm.li(Reg::X5, 1);
    asm.call(jtt);
    asm.rdcycle(Reg::X15);
    asm.sub(Reg::X16, Reg::X15, Reg::X14);
    asm.li(Reg::X17, RESULTS);
    asm.st8(Reg::X16, Reg::X17, 8);
    asm.halt();
    asm.assemble().expect("fig5 program assembles")
}

fn main() {
    let p = program();
    let mut c = OooCore::new(SimConfig::ooo(), &p);
    c.run(10_000_000).expect("halts");
    let correct = c.mem.read(RESULTS, 8);
    let wrong = c.mem.read(RESULTS + 8, 8);
    let overhead = wrong.saturating_sub(correct);

    println!("Fig 5: BTB misprediction overhead");
    println!("=================================");
    println!("correct prediction   : {correct} cycles");
    println!("misprediction        : {wrong} cycles");
    println!("overhead (1)+(2)     : {overhead} cycles   (paper: ~16 cycles on gem5)");

    assert!(
        (8..=32).contains(&overhead),
        "BTB mispredict penalty {overhead} out of the paper's ballpark"
    );
}
