//! Fig 8: the Fig 4 experiment repeated under NDA's permissive-propagation
//! policy. The cycle differences vanish: the secret byte is
//! indistinguishable from the other 255 candidates on *both* covert
//! channels — NDA is channel-agnostic.

use nda_attacks::{run_attack, AttackKind};
use nda_core::Variant;

fn main() {
    let secret = 42u8;
    println!("Fig 8: Spectre v1 readout under NDA permissive propagation, secret byte {secret}");
    let cache = run_attack(AttackKind::SpectreV1Cache, Variant::Permissive, secret);
    let btb = run_attack(AttackKind::SpectreV1Btb, Variant::Permissive, secret);

    println!("guess,cache_cycles,btb_cycles");
    for g in 0..256 {
        println!("{g},{},{}", cache.timings[g], btb.timings[g]);
    }

    println!(
        "\ncache channel: leaked={} (recovered={:?}, separation={})",
        cache.leaked, cache.recovered, cache.separation
    );
    println!(
        "btb   channel: leaked={} (recovered={:?}, separation={})",
        btb.leaked, btb.recovered, btb.separation
    );
    println!(
        "secret-slot timing vs median: cache {} vs {}, btb {} vs {}",
        cache.timings[secret as usize], cache.median, btb.timings[secret as usize], btb.median
    );

    assert!(
        !cache.leaked && !btb.leaked,
        "Fig 8 requires NDA to conceal the secret"
    );
}
