//! Table 1: the attack taxonomy, demonstrated live. Every attack PoC runs
//! on every evaluated configuration; the printed matrix shows LEAK or
//! blocked, and each cell is asserted against the paper's ground truth
//! (`AttackKind::expected_blocked`).

use nda_attacks::{run_attack, AttackKind};
use nda_core::Variant;

fn main() {
    let secret = 42u8;
    println!("Table 1: attack x defense matrix (secret byte {secret})");
    println!("  control-steering: Spectre v1 (cache), Spectre v1 (BTB), SSB");
    println!("  chosen-code:      Meltdown, LazyFP\n");

    print!("{:<20}", "variant");
    for k in AttackKind::all() {
        print!("{:>20}", k.name());
    }
    println!();

    let mut mismatches = 0;
    for v in Variant::all() {
        print!("{:<20}", v.name());
        for k in AttackKind::all() {
            let outcome = run_attack(k, v, secret);
            let expected_blocked = k.expected_blocked(v);
            let cell = match (outcome.leaked, expected_blocked) {
                (true, false) => "LEAK",
                (false, true) => "blocked",
                (true, true) => {
                    mismatches += 1;
                    "LEAK(!!)"
                }
                (false, false) => {
                    mismatches += 1;
                    "blocked(?)"
                }
            };
            print!("{cell:>20}");
        }
        println!();
    }

    println!("\nlegend: LEAK = secret byte recovered; blocked = indistinguishable");
    println!(
        "every cell matches the paper's Tables 1-2: {}",
        mismatches == 0
    );
    assert_eq!(mismatches, 0, "matrix deviates from the paper");
}
