//! Fig 7-style hardware-defense comparison: NDA vs InvisiSpec vs STT vs
//! ShadowBinding, normalised to the insecure OoO baseline and grouped by
//! mechanism family.
//!
//! Expected shape: the taint-tracking family (STT, ShadowBinding) prices
//! below strict-propagation NDA — it delays only *transmitting* uses of
//! tainted data where strict NDA delays every wakeup behind a branch —
//! with the futuristic threat model and the lazy (commit-time) untaint
//! paying a surcharge over their Spectre/eager siblings. Coverage is the
//! other half of the trade (see table1_attack_matrix): the taint variants
//! leave the conditional-branch implicit channel open.

use nda_bench::{hw_comparison_table, hw_comparison_variants, sweep, SweepConfig};
use nda_core::Variant;
use nda_workloads::all;

fn main() {
    let cfg = SweepConfig::from_env();
    println!(
        "hardware-defense comparison ({} samples x {} iterations per cell)",
        cfg.samples, cfg.iters
    );
    let variants = hw_comparison_variants();
    let results = sweep(all(), &variants, cfg);
    print!("{}", hw_comparison_table(&results));

    let idx = |v: Variant| variants.iter().position(|x| *x == v).unwrap();
    let g = |v: Variant| results.geomean_normalized(idx(v));
    for v in [
        Variant::SttSpectre,
        Variant::SttFuturistic,
        Variant::ShadowBindingEager,
        Variant::ShadowBindingLazy,
    ] {
        assert!(
            g(v) < g(Variant::Strict),
            "{}: taint tracking must price below strict-propagation NDA \
             ({:.3} vs {:.3})",
            v.name(),
            g(v),
            g(Variant::Strict)
        );
    }
    assert!(
        g(Variant::SttSpectre) <= g(Variant::SttFuturistic),
        "the futuristic threat model cannot be cheaper than Spectre-only"
    );
    println!("shape check passed: STT/ShadowBinding < strict NDA; spectre <= futuristic");
}
