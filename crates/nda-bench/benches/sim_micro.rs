//! Criterion micro-benchmarks of the simulator itself: cycles-per-second
//! throughput of each core model on a small fixed kernel. These are not
//! paper experiments — they track the reproduction's own performance so
//! regressions in the cycle loop show up.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nda_core::{run_variant, Variant};
use nda_workloads::{by_name, WorkloadParams};

fn bench_variants(c: &mut Criterion) {
    let wl = by_name("gcc").expect("kernel exists");
    let prog = (wl.build)(&WorkloadParams { seed: 1, iters: 20 });
    let mut group = c.benchmark_group("simulate_gcc_kernel");
    group.sample_size(10);
    for v in [
        Variant::Ooo,
        Variant::FullProtection,
        Variant::InOrder,
        Variant::InvisiSpecFuture,
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(v.name()), &v, |b, &v| {
            b.iter(|| run_variant(v, &prog, 100_000_000).expect("halts"));
        });
    }
    group.finish();
}

fn bench_program_build(c: &mut Criterion) {
    c.bench_function("build_mcf_kernel", |b| {
        let wl = by_name("mcf").unwrap();
        b.iter(|| (wl.build)(&WorkloadParams { seed: 3, iters: 10 }));
    });
}

criterion_group!(benches, bench_variants, bench_program_build);
criterion_main!(benches);
