//! Mitigation-axis sweeps: hardware NDA vs software hardening vs both.
//!
//! The paper's Fig. 7 prices the *hardware* defenses: normalised CPI of
//! each NDA policy over the unprotected out-of-order baseline. The
//! mitigation synthesizer (`nda-analyze::mitigate`) opens a second axis
//! — repair the *program* instead of the pipeline — and the natural
//! question is what each point in the plane costs:
//!
//! * **hw(v)**   = original program on variant `v` / original on Base OoO
//! * **sw**      = hardened program on Base OoO  / original on Base OoO
//! * **both(v)** = hardened program on variant `v` / original on Base OoO
//!
//! Workloads carry no secret labeling of their own (nothing in them *is*
//! secret), so hardening them against the empty spec would be a no-op.
//! To measure what blanket software mitigation costs, the sweep hardens
//! under [`blanket_spec`] — every byte of memory labeled secret — which
//! forces the synthesizer to treat every load as an access and fence (or
//! thunk) every transmissible chain, the software analogue of NDA's
//! "trust nothing" hardware stance. Mask never applies under the blanket
//! label (there is no secret-free window to clamp into), which is the
//! honest comparison: index clamping is a *targeted* repair and needs a
//! real labeling.
//!
//! Grid: `{original, hardened} × variants × workloads × samples`, run on
//! the shared [`execute_jobs`] pool. Ratios are per-workload with a
//! geometric mean across workloads, mirroring [`SweepResults`]'s
//! normalised-CPI convention.
//!
//! [`SweepResults`]: crate::sweep::SweepResults

use nda_analyze::{harden, HardenConfig, PassSet};
use nda_core::{run_variant, Variant};
use nda_isa::{Program, SecretSpec};
use nda_workloads::{Workload, WorkloadParams};

use crate::sweep::execute_jobs;

/// Every byte of memory labeled secret (kernel space included via the
/// range itself). The strongest labeling the analyzer accepts: under it
/// any load is a potential secret access.
pub fn blanket_spec() -> SecretSpec {
    SecretSpec::empty().with_range(0, u64::MAX)
}

/// Knobs for [`mitigation_sweep`].
#[derive(Debug, Clone)]
pub struct MitigationConfig {
    /// Passes the synthesizer may use (mask is inert under the blanket
    /// labeling; see module docs).
    pub passes: PassSet,
    /// Independent samples per cell (seed `base + s` each).
    pub samples: u64,
    /// Workload outer iterations.
    pub iters: u64,
    /// Base seed.
    pub seed: u64,
    /// Worker threads for the run grid.
    pub jobs: usize,
    /// Per-run cycle budget.
    pub max_cycles: u64,
}

impl Default for MitigationConfig {
    fn default() -> MitigationConfig {
        MitigationConfig {
            passes: PassSet::all(),
            samples: 2,
            iters: 200,
            seed: 1,
            jobs: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            max_cycles: 2_000_000_000,
        }
    }
}

/// What hardening did to one workload (sample 0's program).
#[derive(Debug, Clone, Copy, Default)]
pub struct HardeningStats {
    /// Instructions before.
    pub orig_len: usize,
    /// Instructions after.
    pub hardened_len: usize,
    /// Fixes applied.
    pub fixes: usize,
    /// Gadgets no enabled pass could repair.
    pub residual: usize,
    /// Rewrite rounds used.
    pub rounds: usize,
}

/// Results of one mitigation sweep.
#[derive(Debug)]
pub struct MitigationResults {
    /// Workload names, in grid order.
    pub workloads: Vec<&'static str>,
    /// Variants, in grid order.
    pub variants: Vec<Variant>,
    /// Per-workload hardening statistics.
    pub hardening: Vec<HardeningStats>,
    /// Index into `variants` used as the normalisation baseline
    /// (`Variant::Ooo` when present, otherwise 0).
    pub baseline: usize,
    /// Mean cycles per `[workload][variant][{orig, hardened}]` cell;
    /// `NaN` marks a cell whose every sample failed.
    cycles: Vec<f64>,
}

impl MitigationResults {
    fn idx(&self, w: usize, v: usize, hardened: bool) -> usize {
        (w * self.variants.len() + v) * 2 + usize::from(hardened)
    }

    /// Mean cycles of one cell (`NaN` if it failed).
    pub fn cycles(&self, w: usize, v: usize, hardened: bool) -> f64 {
        self.cycles[self.idx(w, v, hardened)]
    }

    /// Original program on `v`, normalised to the baseline. (Fig. 7's
    /// hardware axis.)
    pub fn hw(&self, w: usize, v: usize) -> f64 {
        self.cycles(w, v, false) / self.cycles(w, self.baseline, false)
    }

    /// Hardened program on the unprotected baseline, normalised to the
    /// original there. (The pure software axis.)
    pub fn sw(&self, w: usize) -> f64 {
        self.cycles(w, self.baseline, true) / self.cycles(w, self.baseline, false)
    }

    /// Hardened program on `v`, normalised to the original on the
    /// baseline. (Defense in depth: both axes at once.)
    pub fn both(&self, w: usize, v: usize) -> f64 {
        self.cycles(w, v, true) / self.cycles(w, self.baseline, false)
    }

    fn geomean(&self, f: impl Fn(usize) -> f64) -> f64 {
        let vals: Vec<f64> = (0..self.workloads.len())
            .map(f)
            .filter(|x| x.is_finite())
            .collect();
        if vals.is_empty() {
            return f64::NAN;
        }
        (vals.iter().map(|x| x.ln()).sum::<f64>() / vals.len() as f64).exp()
    }

    /// Geometric mean of [`MitigationResults::hw`] over workloads.
    pub fn geomean_hw(&self, v: usize) -> f64 {
        self.geomean(|w| self.hw(w, v))
    }

    /// Geometric mean of [`MitigationResults::sw`] over workloads.
    pub fn geomean_sw(&self) -> f64 {
        self.geomean(|w| self.sw(w))
    }

    /// Geometric mean of [`MitigationResults::both`] over workloads.
    pub fn geomean_both(&self, v: usize) -> f64 {
        self.geomean(|w| self.both(w, v))
    }
}

/// Run the full mitigation grid: harden every workload under
/// [`blanket_spec`] with `cfg.passes`, then time `{original, hardened}`
/// on every variant, `cfg.samples` seeds each, on the shared worker
/// pool. Failed runs degrade their cell to `NaN`; nothing panics the
/// sweep.
pub fn mitigation_sweep(
    workloads: &[Workload],
    variants: &[Variant],
    cfg: &MitigationConfig,
) -> MitigationResults {
    let spec = blanket_spec();
    let nw = workloads.len();
    let nv = variants.len();
    let ns = cfg.samples.max(1) as usize;
    let hcfg = HardenConfig {
        passes: cfg.passes,
        ..HardenConfig::default()
    };

    // Stage 1: build + harden each (workload, sample) once.
    let pairs: Vec<Option<(Program, Program, HardeningStats)>> =
        execute_jobs(nw * ns, cfg.jobs, |i| {
            let (w, s) = (i / ns, i % ns);
            let params = WorkloadParams {
                seed: cfg.seed + s as u64,
                iters: cfg.iters,
            };
            let orig = (workloads[w].build)(&params);
            let out = harden(&orig, &spec, &hcfg);
            let stats = HardeningStats {
                orig_len: orig.insts.len(),
                hardened_len: out.program.insts.len(),
                fixes: out.fixes.len(),
                residual: out.residual.len(),
                rounds: out.rounds,
            };
            (orig, out.program, stats)
        });

    let hardening: Vec<HardeningStats> = (0..nw)
        .map(|w| {
            pairs[w * ns]
                .as_ref()
                .map(|(_, _, s)| *s)
                .unwrap_or_default()
        })
        .collect();

    // Stage 2: the run grid — (workload, sample, variant, {orig, hard}).
    let total = nw * ns * nv * 2;
    let runs: Vec<Option<f64>> = execute_jobs(total, cfg.jobs, |i| {
        let h = i % 2;
        let v = (i / 2) % nv;
        let s = (i / 2 / nv) % ns;
        let w = i / 2 / nv / ns;
        let Some((orig, hard, _)) = pairs[w * ns + s].as_ref() else {
            return f64::NAN;
        };
        let prog = if h == 1 { hard } else { orig };
        match run_variant(variants[v], prog, cfg.max_cycles) {
            Ok(r) => r.stats.cycles as f64,
            Err(_) => f64::NAN,
        }
    });

    // Aggregate sample means per cell.
    let mut cycles = vec![f64::NAN; nw * nv * 2];
    for w in 0..nw {
        for v in 0..nv {
            for h in 0..2 {
                let samples: Vec<f64> = (0..ns)
                    .filter_map(|s| runs[((w * ns + s) * nv + v) * 2 + h].filter(|x| x.is_finite()))
                    .collect();
                if !samples.is_empty() {
                    cycles[(w * nv + v) * 2 + h] =
                        samples.iter().sum::<f64>() / samples.len() as f64;
                }
            }
        }
    }

    let baseline = variants
        .iter()
        .position(|&v| v == Variant::Ooo)
        .unwrap_or(0);
    MitigationResults {
        workloads: workloads.iter().map(|w| w.name).collect(),
        variants: variants.to_vec(),
        hardening,
        baseline,
        cycles,
    }
}

fn fmt_ratio(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.3}")
    } else {
        "-".into()
    }
}

/// Render the two Fig-7-style tables: per-workload software overhead,
/// then per-variant hardware vs software vs combined geomeans.
pub fn mitigation_table(r: &MitigationResults, passes: &PassSet) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "software hardening under blanket secret labeling (passes: {})",
        passes.names()
    );
    let _ = writeln!(
        out,
        "{:<12}{:>7}{:>7}{:>7}{:>7}{:>8}{:>12}",
        "workload", "insts", "+ins", "fixes", "resid", "rounds", "sw ratio"
    );
    for (w, name) in r.workloads.iter().enumerate() {
        let h = &r.hardening[w];
        let _ = writeln!(
            out,
            "{:<12}{:>7}{:>7}{:>7}{:>7}{:>8}{:>12}",
            name,
            h.orig_len,
            h.hardened_len.saturating_sub(h.orig_len),
            h.fixes,
            h.residual,
            h.rounds,
            fmt_ratio(r.sw(w)),
        );
    }
    let _ = writeln!(
        out,
        "geomean software-only overhead on {}: {}",
        r.variants[r.baseline].name(),
        fmt_ratio(r.geomean_sw())
    );
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "normalised cycles vs original program on {} (geomean over workloads)",
        r.variants[r.baseline].name()
    );
    let _ = writeln!(out, "{:<22}{:>10}{:>10}", "variant", "hw only", "hw + sw");
    for (v, variant) in r.variants.iter().enumerate() {
        let _ = writeln!(
            out,
            "{:<22}{:>10}{:>10}",
            variant.name(),
            fmt_ratio(r.geomean_hw(v)),
            fmt_ratio(r.geomean_both(v)),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_grid_produces_finite_ratios() {
        let workloads = &nda_workloads::all()[..2];
        let variants = [Variant::Ooo, Variant::FullProtection];
        let cfg = MitigationConfig {
            samples: 1,
            iters: 8,
            seed: 3,
            jobs: 2,
            ..MitigationConfig::default()
        };
        let r = mitigation_sweep(workloads, &variants, &cfg);
        assert_eq!(r.baseline, 0);
        for w in 0..2 {
            // Blanket labeling must force real work onto every kernel.
            assert!(
                r.hardening[w].fixes > 0,
                "{}: no fixes under blanket labeling",
                r.workloads[w]
            );
            assert!(r.hardening[w].hardened_len > r.hardening[w].orig_len);
            assert!((r.hw(w, 0) - 1.0).abs() < 1e-12, "baseline normalises to 1");
            assert!(r.sw(w) >= 1.0, "hardening cannot speed a program up");
            for v in 0..2 {
                assert!(r.both(w, v).is_finite());
            }
        }
        let table = mitigation_table(&r, &cfg.passes);
        assert!(table.contains("hw only"));
        assert!(table.contains("geomean software-only overhead"));
    }
}
