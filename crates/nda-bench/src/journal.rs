//! Crash-safe sweep journal: one checksummed record file per completed
//! (workload, variant, sample) cell, written atomically, so a killed
//! sweep resumes by re-running only the missing or failed cells.
//!
//! Layout of a journal directory:
//!
//! ```text
//! <dir>/meta.rec          sweep shape pin (workloads/variants/samples/...)
//! <dir>/c<w>-<v>-<s>.rec  one record per finished cell
//! <dir>/quarantine/       corrupt records moved aside on load
//! ```
//!
//! Record format (text, line-oriented):
//!
//! ```text
//! nda-journal-v1 <fnv1a64-hex>
//! status=ok            (or status=failed)
//! <key>=<value>        bit-exact payload: u64s in decimal,
//! ...                  f64s as IEEE-754 bit patterns in hex
//! ```
//!
//! The checksum on the header line is FNV-1a 64 over every byte after
//! that line. Writes go to `<name>.tmp`, are fsynced, then renamed into
//! place — a kill mid-write leaves at worst a stale `.tmp`, never a
//! half-written record. A record that fails its checksum (truncated,
//! bit-flipped) is *quarantined*: moved into `quarantine/` and treated as
//! missing, so resume re-runs that cell instead of trusting or deleting
//! the evidence.
//!
//! Floats are serialized as `to_bits()` hex so a journaled result is
//! bit-identical to the in-memory one — the resume-equals-clean-run
//! property is exact equality, not approximate.

use crate::fault::JobError;
use nda_core::{RunResult, SampledInfo};
use nda_mem::{CacheStats, MemStats};
use nda_stats::{CpiClass, Hist, Sample, SimStats};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::error::Error;
use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Magic prefix of every record's header line.
const MAGIC: &str = "nda-journal-v1";

/// A cell key: (workload index, variant index, sample index).
pub type CellKey = (usize, usize, usize);

/// Journal-level failure (as opposed to per-job I/O failures, which are
/// recorded as [`JobError::Io`] on the affected cell).
#[derive(Debug)]
#[non_exhaustive]
pub enum JournalError {
    /// An I/O operation on the journal directory itself failed.
    Io {
        /// The path involved.
        path: PathBuf,
        /// The underlying error text.
        message: String,
    },
    /// The journal on disk was written by a sweep of a different shape
    /// (different workloads, variants, samples, iters, seed or mode) —
    /// resuming would silently mix incompatible results.
    ConfigMismatch {
        /// What differed.
        detail: String,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io { path, message } => {
                write!(f, "journal i/o failure at {}: {message}", path.display())
            }
            JournalError::ConfigMismatch { detail } => {
                write!(
                    f,
                    "journal belongs to a different sweep configuration: {detail}"
                )
            }
        }
    }
}

impl Error for JournalError {}

/// What a journal directory said on load.
#[derive(Debug, Default)]
pub struct JournalState {
    /// Cells with a valid Ok record; resume skips these.
    pub ok: HashMap<CellKey, RunResult>,
    /// Cells whose last attempt was recorded as failed. Resume re-runs
    /// them (they count as missing), but the set lets callers report how
    /// much of the journal was degraded.
    pub failed: HashSet<CellKey>,
    /// Record files that failed their checksum and were moved into
    /// `quarantine/`.
    pub quarantined: Vec<PathBuf>,
}

/// Handle on a journal directory.
#[derive(Debug, Clone)]
pub struct Journal {
    dir: PathBuf,
}

/// FNV-1a 64-bit over `data` — small, dependency-free, and plenty to
/// detect truncation and bit flips (this is corruption detection, not
/// authentication).
pub fn fnv1a64(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn io_err(path: &Path, e: impl fmt::Display) -> JournalError {
    JournalError::Io {
        path: path.to_path_buf(),
        message: e.to_string(),
    }
}

/// Write `body` to `path` atomically: tmp file in the same directory,
/// fsync, rename.
fn write_atomic(path: &Path, body: &str) -> Result<(), JournalError> {
    let tmp = path.with_extension("tmp");
    let mut f = fs::File::create(&tmp).map_err(|e| io_err(&tmp, e))?;
    f.write_all(body.as_bytes()).map_err(|e| io_err(&tmp, e))?;
    f.sync_all().map_err(|e| io_err(&tmp, e))?;
    drop(f);
    fs::rename(&tmp, path).map_err(|e| io_err(path, e))?;
    Ok(())
}

/// Frame `payload` with the checksummed header line.
fn frame(payload: &str) -> String {
    format!("{MAGIC} {:016x}\n{payload}", fnv1a64(payload.as_bytes()))
}

/// Validate a record's frame; `None` when the magic or checksum is wrong.
fn unframe(text: &str) -> Option<&str> {
    let (header, payload) = text.split_once('\n')?;
    let (magic, sum_hex) = header.split_once(' ')?;
    if magic != MAGIC {
        return None;
    }
    let sum = u64::from_str_radix(sum_hex, 16).ok()?;
    (sum == fnv1a64(payload.as_bytes())).then_some(payload)
}

impl Journal {
    /// Open (creating if needed) the journal at `dir` for a sweep
    /// described by `meta` — a stable string naming the sweep shape.
    /// An existing journal with a *different* meta is refused
    /// ([`JournalError::ConfigMismatch`]) rather than silently mixed.
    /// Returns the handle plus whatever valid progress was on disk.
    pub fn open(dir: &Path, meta: &str) -> Result<(Journal, JournalState), JournalError> {
        fs::create_dir_all(dir).map_err(|e| io_err(dir, e))?;
        let j = Journal {
            dir: dir.to_path_buf(),
        };
        let meta_path = j.dir.join("meta.rec");
        match fs::read_to_string(&meta_path) {
            Ok(text) => match unframe(&text) {
                Some(existing) if existing == meta => {}
                Some(existing) => {
                    return Err(JournalError::ConfigMismatch {
                        detail: format!("on disk: {existing:?}; this sweep: {meta:?}"),
                    });
                }
                // A corrupt meta record means nothing on disk can be
                // trusted to belong to this sweep shape.
                None => {
                    return Err(JournalError::ConfigMismatch {
                        detail: format!(
                            "meta record {} is corrupt; delete the journal to start over",
                            meta_path.display()
                        ),
                    });
                }
            },
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                write_atomic(&meta_path, &frame(meta))?;
            }
            Err(e) => return Err(io_err(&meta_path, e)),
        }
        let state = j.load()?;
        Ok((j, state))
    }

    /// The journal directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn record_path(&self, (w, v, s): CellKey) -> PathBuf {
        self.dir.join(format!("c{w}-{v}-{s}.rec"))
    }

    /// Journal a successful cell.
    pub fn record_ok(&self, cell: CellKey, r: &RunResult) -> Result<(), JournalError> {
        let mut p = String::from("status=ok\n");
        serialize_run(&mut p, r);
        write_atomic(&self.record_path(cell), &frame(&p))
    }

    /// Journal a failed cell (after retries were exhausted). Failed
    /// records are evidence, not results: resume re-runs the cell.
    pub fn record_failed(&self, cell: CellKey, e: &JobError) -> Result<(), JournalError> {
        let p = format!("status=failed\nkind={}\nerror={}\n", e.kind_label(), {
            // Keep the record line-oriented: the error text is collapsed
            // onto one line (snapshots are multi-line).
            e.to_string().replace('\n', " | ")
        });
        write_atomic(&self.record_path(cell), &frame(&p))
    }

    /// Scan the directory, returning every valid record and quarantining
    /// corrupt ones.
    fn load(&self) -> Result<JournalState, JournalError> {
        let mut state = JournalState::default();
        let entries = fs::read_dir(&self.dir).map_err(|e| io_err(&self.dir, e))?;
        for entry in entries {
            let entry = entry.map_err(|e| io_err(&self.dir, e))?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            let Some(cell) = parse_record_name(&name) else {
                continue; // meta.rec, quarantine/, stale .tmp files
            };
            let text = fs::read_to_string(&path).map_err(|e| io_err(&path, e))?;
            match unframe(&text).and_then(parse_record) {
                Some(Record::Ok(r)) => {
                    state.ok.insert(cell, r);
                }
                Some(Record::Failed) => {
                    state.failed.insert(cell);
                }
                None => {
                    let qdir = self.dir.join("quarantine");
                    fs::create_dir_all(&qdir).map_err(|e| io_err(&qdir, e))?;
                    let qpath = qdir.join(name.as_ref());
                    fs::rename(&path, &qpath).map_err(|e| io_err(&path, e))?;
                    state.quarantined.push(qpath);
                }
            }
        }
        Ok(state)
    }
}

/// `c<w>-<v>-<s>.rec` → cell key.
fn parse_record_name(name: &str) -> Option<CellKey> {
    let body = name.strip_prefix('c')?.strip_suffix(".rec")?;
    let mut it = body.splitn(3, '-');
    let w = it.next()?.parse().ok()?;
    let v = it.next()?.parse().ok()?;
    let s = it.next()?.parse().ok()?;
    Some((w, v, s))
}

// One short-lived value per record file during load; boxing the
// (Copy, ~1 KiB) RunResult would buy nothing.
#[allow(clippy::large_enum_variant)]
enum Record {
    Ok(RunResult),
    Failed,
}

fn parse_record(payload: &str) -> Option<Record> {
    let mut kv = BTreeMap::new();
    for line in payload.lines() {
        let (k, v) = line.split_once('=')?;
        kv.insert(k, v);
    }
    match kv.get("status").copied() {
        Some("ok") => deserialize_run(&kv).map(Record::Ok),
        Some("failed") => Some(Record::Failed),
        _ => None,
    }
}

// --- bit-exact RunResult (de)serialization -------------------------------

fn push_u64(out: &mut String, k: &str, v: u64) {
    out.push_str(k);
    out.push('=');
    out.push_str(&v.to_string());
    out.push('\n');
}

fn push_f64(out: &mut String, k: &str, v: f64) {
    out.push_str(k);
    out.push('=');
    out.push_str(&format!("{:016x}", v.to_bits()));
    out.push('\n');
}

fn push_list(out: &mut String, k: &str, vs: &[u64]) {
    out.push_str(k);
    out.push('=');
    for (i, v) in vs.iter().enumerate() {
        if i > 0 {
            out.push(' ');
        }
        out.push_str(&v.to_string());
    }
    out.push('\n');
}

fn push_hist(out: &mut String, prefix: &str, h: &Hist) {
    push_u64(out, &format!("{prefix}.count"), h.count);
    push_u64(out, &format!("{prefix}.sum"), h.sum);
    push_list(out, &format!("{prefix}.buckets"), &h.buckets);
}

/// A canonical, bit-exact text fingerprint of a [`RunResult`]: the journal
/// record payload, which covers every deterministic field (floats by their
/// IEEE bits) and excludes host wall-time. Two results fingerprint equal
/// iff the simulation produced identical numbers — the chaos and
/// determinism tests compare sweeps through this.
pub fn fingerprint(r: &RunResult) -> String {
    let mut out = String::new();
    serialize_run(&mut out, r);
    out
}

fn serialize_run(out: &mut String, r: &RunResult) {
    let s = &r.stats;
    push_u64(out, "cycles", s.cycles);
    push_u64(out, "committed_insts", s.committed_insts);
    push_u64(out, "committed_loads", s.committed_loads);
    push_u64(out, "committed_stores", s.committed_stores);
    push_u64(out, "committed_branches", s.committed_branches);
    push_u64(out, "branch_mispredicts", s.branch_mispredicts);
    push_u64(out, "mem_order_violations", s.mem_order_violations);
    push_u64(out, "squashes", s.squashes);
    push_u64(out, "faults", s.faults);
    push_u64(out, "wrong_path_executed", s.wrong_path_executed);
    push_u64(out, "commit_cycles", s.commit_cycles);
    push_u64(out, "memory_stall_cycles", s.memory_stall_cycles);
    push_u64(out, "backend_stall_cycles", s.backend_stall_cycles);
    push_u64(out, "frontend_stall_cycles", s.frontend_stall_cycles);
    push_u64(out, "dispatch_to_issue_total", s.dispatch_to_issue_total);
    push_u64(out, "issued_insts", s.issued_insts);
    push_u64(out, "issue_active_cycles", s.issue_active_cycles);
    push_u64(out, "deferred_broadcasts", s.deferred_broadcasts);
    push_u64(out, "broadcasts", s.broadcasts);
    push_u64(out, "store_bypasses", s.store_bypasses);
    for class in CpiClass::all() {
        push_u64(
            out,
            &format!("cpi.{}", class.name()),
            s.cpi_stack.get(class),
        );
    }
    push_hist(out, "d2i", &s.d2i_hist);
    push_hist(out, "defer", &s.defer_hist);

    let m = &r.mem_stats;
    push_u64(out, "mem.l1i.hits", m.l1i.hits);
    push_u64(out, "mem.l1i.misses", m.l1i.misses);
    push_u64(out, "mem.l1d.hits", m.l1d.hits);
    push_u64(out, "mem.l1d.misses", m.l1d.misses);
    push_u64(out, "mem.l2.hits", m.l2.hits);
    push_u64(out, "mem.l2.misses", m.l2.misses);
    push_u64(out, "mem.dram_accesses", m.dram_accesses);
    push_u64(out, "mem.prefetches", m.prefetches);
    if let Some(mlp) = m.mlp {
        push_f64(out, "mem.mlp", mlp);
    }

    push_list(out, "regs", &r.regs);
    push_u64(out, "halted", u64::from(r.halted));
    // host_ns is wall-clock instrumentation, never part of determinism
    // comparisons; a journaled record stores 0.
    if let Some(sp) = &r.sampled {
        push_f64(out, "sampled.cpi.mean", sp.cpi.mean);
        push_f64(out, "sampled.cpi.ci95", sp.cpi.ci95);
        push_u64(out, "sampled.cpi.n", sp.cpi.n as u64);
        push_u64(out, "sampled.detailed_insts", sp.detailed_insts);
        push_u64(out, "sampled.fast_forwarded_insts", sp.fast_forwarded_insts);
        push_u64(out, "sampled.windows", sp.windows as u64);
    }
}

fn get_u64(kv: &BTreeMap<&str, &str>, k: &str) -> Option<u64> {
    kv.get(k)?.parse().ok()
}

fn get_f64_bits(kv: &BTreeMap<&str, &str>, k: &str) -> Option<f64> {
    Some(f64::from_bits(u64::from_str_radix(kv.get(k)?, 16).ok()?))
}

fn get_list<const N: usize>(kv: &BTreeMap<&str, &str>, k: &str) -> Option<[u64; N]> {
    let mut out = [0u64; N];
    let mut it = kv.get(k)?.split(' ');
    for slot in &mut out {
        *slot = it.next()?.parse().ok()?;
    }
    it.next().is_none().then_some(out)
}

fn get_hist(kv: &BTreeMap<&str, &str>, prefix: &str) -> Option<Hist> {
    Some(Hist {
        count: get_u64(kv, &format!("{prefix}.count"))?,
        sum: get_u64(kv, &format!("{prefix}.sum"))?,
        buckets: get_list(kv, &format!("{prefix}.buckets"))?,
    })
}

fn get_cache(kv: &BTreeMap<&str, &str>, prefix: &str) -> Option<CacheStats> {
    Some(CacheStats {
        hits: get_u64(kv, &format!("{prefix}.hits"))?,
        misses: get_u64(kv, &format!("{prefix}.misses"))?,
    })
}

fn deserialize_run(kv: &BTreeMap<&str, &str>) -> Option<RunResult> {
    let mut stats = SimStats::new();
    stats.cycles = get_u64(kv, "cycles")?;
    stats.committed_insts = get_u64(kv, "committed_insts")?;
    stats.committed_loads = get_u64(kv, "committed_loads")?;
    stats.committed_stores = get_u64(kv, "committed_stores")?;
    stats.committed_branches = get_u64(kv, "committed_branches")?;
    stats.branch_mispredicts = get_u64(kv, "branch_mispredicts")?;
    stats.mem_order_violations = get_u64(kv, "mem_order_violations")?;
    stats.squashes = get_u64(kv, "squashes")?;
    stats.faults = get_u64(kv, "faults")?;
    stats.wrong_path_executed = get_u64(kv, "wrong_path_executed")?;
    stats.commit_cycles = get_u64(kv, "commit_cycles")?;
    stats.memory_stall_cycles = get_u64(kv, "memory_stall_cycles")?;
    stats.backend_stall_cycles = get_u64(kv, "backend_stall_cycles")?;
    stats.frontend_stall_cycles = get_u64(kv, "frontend_stall_cycles")?;
    stats.dispatch_to_issue_total = get_u64(kv, "dispatch_to_issue_total")?;
    stats.issued_insts = get_u64(kv, "issued_insts")?;
    stats.issue_active_cycles = get_u64(kv, "issue_active_cycles")?;
    stats.deferred_broadcasts = get_u64(kv, "deferred_broadcasts")?;
    stats.broadcasts = get_u64(kv, "broadcasts")?;
    stats.store_bypasses = get_u64(kv, "store_bypasses")?;
    for class in CpiClass::all() {
        stats
            .cpi_stack
            .set(class, get_u64(kv, &format!("cpi.{}", class.name()))?);
    }
    stats.d2i_hist = get_hist(kv, "d2i")?;
    stats.defer_hist = get_hist(kv, "defer")?;

    let mem_stats = MemStats {
        l1i: get_cache(kv, "mem.l1i")?,
        l1d: get_cache(kv, "mem.l1d")?,
        l2: get_cache(kv, "mem.l2")?,
        dram_accesses: get_u64(kv, "mem.dram_accesses")?,
        prefetches: get_u64(kv, "mem.prefetches")?,
        mlp: if kv.contains_key("mem.mlp") {
            Some(get_f64_bits(kv, "mem.mlp")?)
        } else {
            None
        },
    };

    let sampled = if kv.contains_key("sampled.cpi.mean") {
        Some(SampledInfo {
            cpi: Sample {
                mean: get_f64_bits(kv, "sampled.cpi.mean")?,
                ci95: get_f64_bits(kv, "sampled.cpi.ci95")?,
                n: get_u64(kv, "sampled.cpi.n")? as usize,
            },
            detailed_insts: get_u64(kv, "sampled.detailed_insts")?,
            fast_forwarded_insts: get_u64(kv, "sampled.fast_forwarded_insts")?,
            windows: get_u64(kv, "sampled.windows")? as usize,
            // Wall-clock instrumentation, like host_ns: never serialized,
            // never part of the fingerprint.
            ff_wall_ns: 0,
            detail_wall_ns: 0,
        })
    } else {
        None
    };

    Some(RunResult {
        stats,
        mem_stats,
        regs: get_list(kv, "regs")?,
        halted: get_u64(kv, "halted")? != 0,
        host_ns: 0,
        sampled,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nda_core::{run_variant, Variant};
    use nda_isa::{AluOp, Asm, Reg};

    fn sample_result() -> RunResult {
        let mut asm = Asm::new();
        asm.li(Reg::X2, 3)
            .li(Reg::X3, 4)
            .alu(AluOp::Mul, Reg::X4, Reg::X2, Reg::X3);
        asm.halt();
        let p = asm.assemble().unwrap();
        run_variant(Variant::StrictBr, &p, 1_000_000).unwrap()
    }

    fn assert_bit_identical(a: &RunResult, b: &RunResult) {
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.mem_stats, b.mem_stats);
        assert_eq!(a.regs, b.regs);
        assert_eq!(a.halted, b.halted);
        match (a.sampled, b.sampled) {
            (None, None) => {}
            (Some(x), Some(y)) => {
                assert_eq!(x.cpi.mean.to_bits(), y.cpi.mean.to_bits());
                assert_eq!(x.cpi.ci95.to_bits(), y.cpi.ci95.to_bits());
                assert_eq!(x.cpi.n, y.cpi.n);
                assert_eq!(x.detailed_insts, y.detailed_insts);
                assert_eq!(x.fast_forwarded_insts, y.fast_forwarded_insts);
                assert_eq!(x.windows, y.windows);
            }
            _ => panic!("sampled presence differs"),
        }
    }

    #[test]
    fn run_result_roundtrips_bit_exactly() {
        let mut r = sample_result();
        r.sampled = Some(SampledInfo {
            cpi: Sample {
                mean: 1.375,
                ci95: f64::NAN, // NaN bit patterns must survive too
                n: 3,
            },
            detailed_insts: 123,
            fast_forwarded_insts: 456,
            windows: 3,
            ff_wall_ns: 7,
            detail_wall_ns: 8,
        });
        let mut payload = String::from("status=ok\n");
        serialize_run(&mut payload, &r);
        let parsed = match parse_record(&payload) {
            Some(Record::Ok(p)) => p,
            _ => panic!("roundtrip parse failed"),
        };
        assert_bit_identical(&r, &parsed);
        assert_eq!(
            parsed.sampled.unwrap().cpi.ci95.to_bits(),
            f64::NAN.to_bits()
        );
    }

    #[test]
    fn journal_persists_and_reloads() {
        let dir = std::env::temp_dir().join("nda-journal-test-reload");
        let _ = fs::remove_dir_all(&dir);
        let r = sample_result();
        let (j, state) = Journal::open(&dir, "meta-a").unwrap();
        assert!(state.ok.is_empty());
        j.record_ok((0, 1, 2), &r).unwrap();
        j.record_failed(
            (0, 2, 2),
            &JobError::Panicked {
                message: "boom".into(),
            },
        )
        .unwrap();
        let (_, state) = Journal::open(&dir, "meta-a").unwrap();
        assert_eq!(state.ok.len(), 1);
        assert_bit_identical(&state.ok[&(0, 1, 2)], &r);
        assert!(state.failed.contains(&(0, 2, 2)));
        assert!(state.quarantined.is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn mismatched_meta_is_refused() {
        let dir = std::env::temp_dir().join("nda-journal-test-meta");
        let _ = fs::remove_dir_all(&dir);
        Journal::open(&dir, "meta-a").unwrap();
        let err = Journal::open(&dir, "meta-b").unwrap_err();
        assert!(matches!(err, JournalError::ConfigMismatch { .. }));
        assert!(err.to_string().contains("meta-b"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_records_are_quarantined_not_trusted() {
        let dir = std::env::temp_dir().join("nda-journal-test-corrupt");
        let _ = fs::remove_dir_all(&dir);
        let r = sample_result();
        let (j, _) = Journal::open(&dir, "m").unwrap();
        j.record_ok((0, 0, 0), &r).unwrap();
        j.record_ok((0, 1, 0), &r).unwrap();
        // Truncate one record, bit-flip another.
        let p0 = dir.join("c0-0-0.rec");
        let text = fs::read_to_string(&p0).unwrap();
        fs::write(&p0, &text[..text.len() / 2]).unwrap();
        let p1 = dir.join("c0-1-0.rec");
        let mut bytes = fs::read(&p1).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        fs::write(&p1, &bytes).unwrap();
        let (_, state) = Journal::open(&dir, "m").unwrap();
        assert!(state.ok.is_empty());
        assert_eq!(state.quarantined.len(), 2);
        for q in &state.quarantined {
            assert!(q.exists(), "quarantined file kept: {}", q.display());
        }
        // The records are gone from the journal proper.
        assert!(!p0.exists() && !p1.exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn record_names_roundtrip() {
        assert_eq!(parse_record_name("c3-10-2.rec"), Some((3, 10, 2)));
        assert_eq!(parse_record_name("meta.rec"), None);
        assert_eq!(parse_record_name("c3-10-2.tmp"), None);
        assert_eq!(parse_record_name("quarantine"), None);
    }

    #[test]
    fn fnv_vectors() {
        // Known FNV-1a 64 vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
