//! The workload × variant × sample sweep behind Fig 7 and Fig 9.
//!
//! Every (workload, variant, sample) cell is an independent, seeded,
//! deterministic simulation, so the sweep fans the cells out to a
//! `std::thread::scope` worker pool fed by a shared atomic job counter
//! (std only — no runtime dependencies). Each job writes its
//! [`RunResult`] into a pre-indexed slot, and aggregation walks the slots
//! in the fixed `workload → variant → sample` order, so the output is
//! bit-identical to the serial loop regardless of worker scheduling.
//! `NDA_JOBS=1` takes a dedicated path that *is* the old serial loop.

use nda_core::{
    collect_checkpoints, run_sampled_with, run_variant, RunResult, SampledParams, SimConfig,
    Variant,
};
use nda_stats::Sample;
use nda_workloads::{Workload, WorkloadParams};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Cycle budget per sample (generous: the in-order core is slow).
pub const SWEEP_MAX_CYCLES: u64 = 2_000_000_000;

/// How each sweep cell is simulated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepMode {
    /// Full-detail timing simulation of every committed instruction.
    Full,
    /// Sampled simulation: one functional fast-forward with warming per
    /// (workload, sample) collects checkpoints that every variant then
    /// restores for its detailed windows — warm-up is paid once, not once
    /// per variant.
    Sampled(SampledParams),
}

/// Sweep sizing.
#[derive(Debug, Clone, Copy)]
pub struct SweepConfig {
    /// Seeded samples per cell (SMARTS-style independent measurements).
    pub samples: u64,
    /// Workload outer iterations per sample.
    pub iters: u64,
    /// Worker threads executing sweep cells (`NDA_JOBS`; defaults to the
    /// host's available parallelism). `1` runs the original serial loop.
    pub jobs: usize,
    /// Full-detail or sampled simulation (`NDA_SAMPLE_EVERY`).
    pub mode: SweepMode,
}

/// Parse env var `k` as a `u64`, defaulting to `d` when unset. An unset
/// variable is the normal case; a *set but unparsable* value is almost
/// certainly a typo the user wants to know about, so warn on stderr
/// instead of silently falling back.
fn env_u64(k: &str, d: u64) -> u64 {
    match std::env::var(k) {
        Ok(v) => match v.parse() {
            Ok(n) => n,
            Err(_) => {
                eprintln!("warning: ignoring unparsable {k}={v:?}; using default {d}");
                d
            }
        },
        Err(_) => d,
    }
}

impl SweepConfig {
    /// Read `NDA_SAMPLES` / `NDA_ITERS` / `NDA_JOBS` from the environment,
    /// with defaults suited to `cargo bench` (3 samples, 400 iterations,
    /// one worker per available host core).
    ///
    /// `NDA_SAMPLE_EVERY=N` (instructions, `0` = off, the default)
    /// switches the sweep to sampled simulation; `NDA_WARM` and
    /// `NDA_DETAIL` size the per-window warm and measure phases (default
    /// 2000 instructions each).
    pub fn from_env() -> SweepConfig {
        let host = std::thread::available_parallelism()
            .map(|n| n.get() as u64)
            .unwrap_or(1);
        let sample_every = env_u64("NDA_SAMPLE_EVERY", 0);
        SweepConfig {
            samples: env_u64("NDA_SAMPLES", 3),
            iters: env_u64("NDA_ITERS", 400),
            jobs: env_u64("NDA_JOBS", host).max(1) as usize,
            mode: if sample_every == 0 {
                SweepMode::Full
            } else {
                SweepMode::Sampled(SampledParams::new(
                    sample_every,
                    env_u64("NDA_WARM", 2_000),
                    env_u64("NDA_DETAIL", 2_000),
                ))
            },
        }
    }
}

/// Aggregated statistics for one (workload, variant) cell.
#[derive(Debug, Clone)]
pub struct CellStats {
    /// Mean CPI with 95 % CI across samples.
    pub cpi: Sample,
    /// Raw per-sample results (for the Fig 9 derived statistics).
    pub runs: Vec<RunResult>,
}

impl CellStats {
    /// Mean of a derived per-run statistic.
    pub fn mean_of(&self, f: impl Fn(&RunResult) -> f64) -> f64 {
        self.runs.iter().map(f).sum::<f64>() / self.runs.len().max(1) as f64
    }
}

/// Results of a full sweep, indexed `[workload][variant]`.
#[derive(Debug, Clone)]
pub struct SweepResults {
    /// Workload names, sweep order.
    pub workloads: Vec<&'static str>,
    /// Variants, sweep order.
    pub variants: Vec<Variant>,
    /// `cells[w][v]`.
    pub cells: Vec<Vec<CellStats>>,
}

impl SweepResults {
    /// The cell for (workload index, variant index).
    pub fn cell(&self, w: usize, v: usize) -> &CellStats {
        &self.cells[w][v]
    }

    /// Mean CPI of `variant` on workload `w`, normalised to the first
    /// variant (the insecure OoO baseline in every bench).
    pub fn normalized_cpi(&self, w: usize, v: usize) -> f64 {
        self.cells[w][v].cpi.mean / self.cells[w][0].cpi.mean
    }

    /// Geometric-mean normalised CPI of variant `v` across workloads.
    pub fn geomean_normalized(&self, v: usize) -> f64 {
        let vals: Vec<f64> = (0..self.workloads.len())
            .map(|w| self.normalized_cpi(w, v))
            .collect();
        nda_stats::geomean(&vals)
    }

    /// Average overhead (percent) of variant `v` vs the baseline.
    pub fn overhead_pct(&self, v: usize) -> f64 {
        (self.geomean_normalized(v) - 1.0) * 100.0
    }

    /// Total simulated cycles across every sample of variant `v`.
    pub fn variant_sim_cycles(&self, v: usize) -> u64 {
        self.cells
            .iter()
            .flat_map(|row| &row[v].runs)
            .map(|r| r.stats.cycles)
            .sum()
    }

    /// Total host nanoseconds spent simulating variant `v` (sum of
    /// per-sample wall clocks — CPU time, not sweep wall time, when the
    /// sweep ran in parallel).
    pub fn variant_host_ns(&self, v: usize) -> u64 {
        self.cells
            .iter()
            .flat_map(|row| &row[v].runs)
            .map(|r| r.host_ns)
            .sum()
    }

    /// Simulated cycles per host second for variant `v` across the sweep.
    /// `None` when host time was not captured.
    pub fn variant_sim_cycles_per_sec(&self, v: usize) -> Option<f64> {
        let ns = self.variant_host_ns(v);
        (ns > 0).then(|| self.variant_sim_cycles(v) as f64 * 1e9 / ns as f64)
    }

    /// Worst per-cell relative CI half-width
    /// ([`Sample::relative_error`]) across the sweep — the SMARTS
    /// convergence figure (how tightly the least-converged cell's CPI is
    /// known). `0.0` for an all-degenerate sweep.
    pub fn max_relative_error(&self) -> f64 {
        self.cells
            .iter()
            .flatten()
            .map(|c| c.cpi.relative_error())
            .filter(|e| e.is_finite())
            .fold(0.0, f64::max)
    }
}

/// Run one sample: build the seeded program and simulate it to completion.
fn run_sample(w: &Workload, v: Variant, s: u64, iters: u64) -> RunResult {
    let params = WorkloadParams {
        seed: 1000 + s,
        iters,
    };
    let prog = (w.build)(&params);
    run_variant(v, &prog, SWEEP_MAX_CYCLES)
        .unwrap_or_else(|e| panic!("{}/{v}/sample{s}: {e}", w.name))
}

/// Run one sampled-mode sample: collect checkpoints once (with the first
/// variant's cache/predictor geometry — all variants share it), then
/// restore them into every variant's detailed windows. Returns results in
/// `variants` order. Each result's `host_ns` is that variant's *marginal*
/// cost (its own detailed windows); the shared functional pass is
/// amortised across the whole variant list.
fn run_sample_set(
    w: &Workload,
    variants: &[Variant],
    s: u64,
    iters: u64,
    sp: SampledParams,
) -> Vec<RunResult> {
    let params = WorkloadParams {
        seed: 1000 + s,
        iters,
    };
    let prog = (w.build)(&params);
    let set = collect_checkpoints(
        &SimConfig::for_variant(variants[0]),
        &prog,
        sp,
        SWEEP_MAX_CYCLES,
    )
    .unwrap_or_else(|e| panic!("{}/checkpoints/sample{s}: {e}", w.name));
    variants
        .iter()
        .map(|&v| {
            let t = Instant::now();
            let mut r = run_sampled_with(SimConfig::for_variant(v), &prog, &set, sp)
                .unwrap_or_else(|e| panic!("{}/{v}/sample{s}: {e}", w.name));
            r.host_ns = t.elapsed().as_nanos() as u64;
            r
        })
        .collect()
}

/// Aggregate one cell's runs (sample order) into [`CellStats`].
fn aggregate(runs: Vec<RunResult>) -> CellStats {
    // Sampled runs carry an exact window-mean CPI; full runs derive it
    // from the cycle/instruction counters.
    let cpis: Vec<f64> = runs
        .iter()
        .map(|r| r.sampled.map_or_else(|| r.cpi(), |s| s.cpi.mean))
        .collect();
    CellStats {
        cpi: Sample::from_values(&cpis),
        runs,
    }
}

/// Run the sweep.
///
/// With `cfg.jobs > 1` the (workload, variant, sample) cells execute on a
/// scoped worker pool; results land in pre-indexed slots and are
/// aggregated in serial order, so the output is bit-identical to
/// `cfg.jobs == 1` (each cell is an isolated, seeded simulation — no
/// shared state, no ordering effects).
///
/// # Panics
///
/// Panics if any sample fails to halt — workloads are self-terminating,
/// so a failure is a simulator bug. (A worker panic propagates when the
/// thread scope joins.)
pub fn sweep(workloads: &[Workload], variants: &[Variant], cfg: SweepConfig) -> SweepResults {
    let cells = match cfg.mode {
        SweepMode::Sampled(sp) => sweep_sampled(workloads, variants, cfg, sp),
        SweepMode::Full if cfg.jobs <= 1 => sweep_serial(workloads, variants, cfg),
        SweepMode::Full => sweep_parallel(workloads, variants, cfg),
    };
    SweepResults {
        workloads: workloads.iter().map(|w| w.name).collect(),
        variants: variants.to_vec(),
        cells,
    }
}

/// The original serial nested loop (`NDA_JOBS=1`).
fn sweep_serial(
    workloads: &[Workload],
    variants: &[Variant],
    cfg: SweepConfig,
) -> Vec<Vec<CellStats>> {
    let mut cells = Vec::with_capacity(workloads.len());
    for w in workloads {
        let mut row = Vec::with_capacity(variants.len());
        for &v in variants {
            let runs = (0..cfg.samples)
                .map(|s| run_sample(w, v, s, cfg.iters))
                .collect();
            row.push(aggregate(runs));
        }
        cells.push(row);
    }
    cells
}

/// Worker-pool execution: a shared atomic counter hands out flat job
/// indices `i = ((w * nv) + v) * ns + s`; each worker writes its result
/// into `slots[i]`. Indices are disjoint, so the per-slot mutexes are
/// uncontended — they exist only to make the writes safe without
/// `unsafe`.
fn sweep_parallel(
    workloads: &[Workload],
    variants: &[Variant],
    cfg: SweepConfig,
) -> Vec<Vec<CellStats>> {
    let (nv, ns) = (variants.len(), cfg.samples as usize);
    let total = workloads.len() * nv * ns;
    let slots: Vec<Mutex<Option<RunResult>>> = (0..total).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..cfg.jobs.min(total.max(1)) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= total {
                    break;
                }
                let (w, v, s) = (i / (nv * ns), (i / ns) % nv, i % ns);
                let r = run_sample(&workloads[w], variants[v], s as u64, cfg.iters);
                *slots[i].lock().expect("slot lock") = Some(r);
            });
        }
    });
    // Aggregation in fixed serial order: scheduling cannot affect output.
    let mut it = slots.into_iter();
    workloads
        .iter()
        .map(|_| {
            (0..nv)
                .map(|_| {
                    let runs = (0..ns)
                        .map(|_| {
                            it.next()
                                .expect("slot per job")
                                .into_inner()
                                .expect("slot lock")
                                .expect("every job completed")
                        })
                        .collect();
                    aggregate(runs)
                })
                .collect()
        })
        .collect()
}

/// Sampled-mode execution. The unit of work is a **(workload, sample)**
/// pair, not a (workload, variant, sample) cell: one functional
/// fast-forward collects the warmed checkpoints, and all variants reuse
/// them. A single worker order is used for any job count — each pair is
/// an isolated, seeded computation, so scheduling cannot affect output
/// and the serial/parallel results are bit-identical.
fn sweep_sampled(
    workloads: &[Workload],
    variants: &[Variant],
    cfg: SweepConfig,
    sp: SampledParams,
) -> Vec<Vec<CellStats>> {
    let (nv, ns) = (variants.len(), cfg.samples as usize);
    let total = workloads.len() * ns;
    let slots: Vec<Mutex<Option<Vec<RunResult>>>> = (0..total).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..cfg.jobs.min(total.max(1)) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= total {
                    break;
                }
                let (w, s) = (i / ns, i % ns);
                let r = run_sample_set(&workloads[w], variants, s as u64, cfg.iters, sp);
                *slots[i].lock().expect("slot lock") = Some(r);
            });
        }
    });
    let sets: Vec<Vec<RunResult>> = slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("slot lock")
                .expect("every job completed")
        })
        .collect();
    (0..workloads.len())
        .map(|w| {
            (0..nv)
                .map(|v| aggregate((0..ns).map(|s| sets[w * ns + s][v]).collect()))
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg(jobs: usize) -> SweepConfig {
        SweepConfig {
            samples: 2,
            iters: 6,
            jobs,
            mode: SweepMode::Full,
        }
    }

    #[test]
    fn tiny_sweep_has_sane_shape() {
        let wl = &nda_workloads::all()[..2];
        let variants = [Variant::Ooo, Variant::InOrder];
        let r = sweep(wl, &variants, tiny_cfg(1));
        assert_eq!(r.cells.len(), 2);
        assert_eq!(r.cells[0].len(), 2);
        // In-order is slower than OoO on every workload.
        for w in 0..2 {
            assert!(r.normalized_cpi(w, 1) > 1.0, "{}", r.workloads[w]);
        }
        assert!(r.overhead_pct(1) > 0.0);
        assert!((r.normalized_cpi(0, 0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn throughput_accessors_cover_all_samples() {
        let wl = &nda_workloads::all()[..1];
        let variants = [Variant::Ooo];
        let r = sweep(wl, &variants, tiny_cfg(2));
        assert_eq!(r.cells[0][0].runs.len(), 2);
        assert!(r.variant_sim_cycles(0) > 0);
        // run_variant captures host time for every sample.
        assert!(r.variant_host_ns(0) > 0);
        assert!(r.variant_sim_cycles_per_sec(0).unwrap() > 0.0);
    }
}
