//! The workload × variant × sample sweep behind Fig 7 and Fig 9.
//!
//! Every (workload, variant, sample) cell is an independent, seeded,
//! deterministic simulation, so the sweep fans the cells out to a
//! `std::thread::scope` worker pool fed by a shared atomic job counter
//! (std only — no runtime dependencies). Each job writes its outcome into
//! a pre-indexed slot, and aggregation walks the slots in the fixed
//! `workload → variant → sample` order, so the output is bit-identical to
//! the serial loop regardless of worker scheduling. `NDA_JOBS=1` runs the
//! same jobs inline on the calling thread.
//!
//! # Fault isolation
//!
//! Jobs are *fault-isolated*: each attempt runs under
//! [`std::panic::catch_unwind`], failures are classified into the typed
//! [`JobError`] taxonomy, retried within a bounded budget (deterministic,
//! seeded backoff — no wall-clock randomness), and bounded by a per-job
//! cycle deadline built on the forward-progress watchdog. A cell whose
//! budget is exhausted degrades to [`CellStatus::Failed`] in the results;
//! it never takes down sibling jobs or the sweep. With an optional
//! [`Journal`], every finished cell is persisted crash-safely so a killed
//! sweep resumes by re-running only the missing or failed cells
//! ([`sweep_journaled`]). Host-side fault injection for testing all of
//! this lives in [`Chaos`].

use crate::fault::{panic_message, Chaos, ChaosAction, JobError, RetryPolicy, CHAOS_SLOW_DEADLINE};
use crate::journal::{CellKey, Journal, JournalState};
use nda_core::{
    collect_checkpoints_cached, run_sampled_with, run_variant, CheckpointStore, RunResult,
    SampledParams, SimConfig, Variant,
};
use nda_stats::Sample;
use nda_workloads::{Workload, WorkloadParams};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Cycle budget per sample (generous: the in-order core is slow).
pub const SWEEP_MAX_CYCLES: u64 = 2_000_000_000;

/// How each sweep cell is simulated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepMode {
    /// Full-detail timing simulation of every committed instruction.
    Full,
    /// Sampled simulation: one functional fast-forward with warming per
    /// (workload, sample) collects checkpoints that every variant then
    /// restores for its detailed windows — warm-up is paid once, not once
    /// per variant.
    Sampled(SampledParams),
}

/// Sweep sizing and fault-tolerance budgets.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Seeded samples per cell (SMARTS-style independent measurements).
    pub samples: u64,
    /// Workload outer iterations per sample.
    pub iters: u64,
    /// Worker threads executing sweep cells (`NDA_JOBS`; defaults to the
    /// host's available parallelism in [`SweepConfig::from_env`]). `1`
    /// runs the jobs inline on the calling thread.
    pub jobs: usize,
    /// Full-detail or sampled simulation (`NDA_SAMPLE_EVERY`).
    pub mode: SweepMode,
    /// Workload seed base: sample `s` builds its program with
    /// `seed + s`. The historical hard-coded base was 1000.
    pub seed: u64,
    /// Extra attempts after a job's first failure (`NDA_RETRIES`).
    pub retries: u32,
    /// Base backoff between retry attempts in milliseconds; the actual
    /// sleep is exponential with deterministic seeded jitter
    /// ([`RetryPolicy::backoff_ms`]). `0` disables sleeping.
    pub backoff_ms: u64,
    /// Per-job cycle deadline (`NDA_DEADLINE_CYCLES`): the simulation
    /// budget of one full-detail run or one functional checkpoint pass. A
    /// job that exhausts it (or trips the forward-progress watchdog)
    /// degrades to [`JobError::DeadlineExceeded`].
    pub deadline_cycles: u64,
    /// Host-level fault injection plan; `None` (the default) injects
    /// nothing.
    pub chaos: Option<Chaos>,
    /// Persistent checkpoint-store directory (`NDA_CKPT_DIR` /
    /// `--checkpoint-dir`). In sampled mode, checkpoint collections are
    /// looked up here by content key before fast-forwarding, and misses
    /// populate the store — so repeated sweeps skip the master functional
    /// pass entirely. `None` (the default) disables caching. Like the
    /// other execution knobs, this never changes what a completed cell's
    /// bits are (store hits are bit-identical to fresh collections), so it
    /// is not part of [`sweep_meta`].
    pub ckpt_dir: Option<PathBuf>,
    /// Size cap in bytes for the persistent checkpoint store
    /// (`NDA_CKPT_MAX_BYTES` / `--checkpoint-gc`). A capped store evicts
    /// oldest-mtime entries after each save; `None` (the default) grows
    /// without bound. Pure cache policy — never part of [`sweep_meta`].
    pub ckpt_max_bytes: Option<u64>,
}

impl Default for SweepConfig {
    /// Bench-suite sizing with fault tolerance on (one retry), serial
    /// execution, and no chaos.
    fn default() -> SweepConfig {
        SweepConfig {
            samples: 3,
            iters: 400,
            jobs: 1,
            mode: SweepMode::Full,
            seed: 1000,
            retries: 1,
            backoff_ms: 10,
            deadline_cycles: SWEEP_MAX_CYCLES,
            chaos: None,
            ckpt_dir: None,
            ckpt_max_bytes: None,
        }
    }
}

/// Parse environment value `v` (from variable `k`) as a `u64`, defaulting
/// to `d` when absent. An unset variable is the normal case; a *set but
/// unparsable* value is almost certainly a typo the user wants to know
/// about, so warn on stderr instead of silently falling back.
fn env_u64_with(get: &dyn Fn(&str) -> Option<String>, k: &str, d: u64) -> u64 {
    match get(k) {
        Some(v) => match v.parse() {
            Ok(n) => n,
            Err(_) => {
                eprintln!("warning: ignoring unparsable {k}={v:?}; using default {d}");
                d
            }
        },
        None => d,
    }
}

impl SweepConfig {
    /// Read `NDA_SAMPLES` / `NDA_ITERS` / `NDA_JOBS` from the environment,
    /// with defaults suited to `cargo bench` (3 samples, 400 iterations,
    /// one worker per available host core).
    ///
    /// `NDA_SAMPLE_EVERY=N` (instructions, `0` = off, the default)
    /// switches the sweep to sampled simulation; `NDA_WARM` and
    /// `NDA_DETAIL` size the per-window warm and measure phases (default
    /// 2000 instructions each). `NDA_RETRIES` and `NDA_DEADLINE_CYCLES`
    /// set the fault-tolerance budgets. `NDA_CKPT_DIR=<dir>` enables the
    /// persistent checkpoint store for sampled mode.
    ///
    /// Every variable gets the same warn-and-default treatment: unset is
    /// silent, unparsable warns on stderr and keeps the default.
    pub fn from_env() -> SweepConfig {
        SweepConfig::from_env_with(&|k| std::env::var(k).ok())
    }

    /// [`SweepConfig::from_env`] against an explicit variable source —
    /// the testable core (process-global `set_var` in tests races across
    /// threads; injecting the lookup does not).
    pub fn from_env_with(get: &dyn Fn(&str) -> Option<String>) -> SweepConfig {
        let host = std::thread::available_parallelism()
            .map(|n| n.get() as u64)
            .unwrap_or(1);
        let d = SweepConfig::default();
        let sample_every = env_u64_with(get, "NDA_SAMPLE_EVERY", 0);
        SweepConfig {
            samples: env_u64_with(get, "NDA_SAMPLES", d.samples),
            iters: env_u64_with(get, "NDA_ITERS", d.iters),
            jobs: env_u64_with(get, "NDA_JOBS", host).max(1) as usize,
            mode: if sample_every == 0 {
                SweepMode::Full
            } else {
                SweepMode::Sampled(SampledParams::new(
                    sample_every,
                    env_u64_with(get, "NDA_WARM", 2_000),
                    env_u64_with(get, "NDA_DETAIL", 2_000),
                ))
            },
            retries: env_u64_with(get, "NDA_RETRIES", u64::from(d.retries)) as u32,
            deadline_cycles: env_u64_with(get, "NDA_DEADLINE_CYCLES", d.deadline_cycles),
            ckpt_dir: get("NDA_CKPT_DIR").map(PathBuf::from),
            ckpt_max_bytes: match env_u64_with(get, "NDA_CKPT_MAX_BYTES", 0) {
                0 => None,
                n => Some(n),
            },
            ..d
        }
    }
}

/// Health of one (workload, variant) results cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellStatus {
    /// Every sample completed.
    Ok,
    /// At least one sample exhausted its retry budget.
    Failed,
    /// At least one sample was never attempted (its shared checkpoint
    /// collection failed, or its worker died), and none failed outright.
    Skipped,
}

impl CellStatus {
    /// Stable lower-case label (`ok` / `failed` / `skipped`) used by the
    /// renderer and the `nda-metrics-v1` document.
    pub fn label(self) -> &'static str {
        match self {
            CellStatus::Ok => "ok",
            CellStatus::Failed => "failed",
            CellStatus::Skipped => "skipped",
        }
    }
}

/// Aggregated statistics for one (workload, variant) cell.
#[derive(Debug, Clone)]
pub struct CellStats {
    /// Mean CPI with 95 % CI across the samples that completed
    /// (`NaN` mean when none did).
    pub cpi: Sample,
    /// Per-sample results of the samples that completed, in sample order
    /// (for the Fig 9 derived statistics).
    pub runs: Vec<RunResult>,
    /// Samples whose retry budget was exhausted: (sample index, final
    /// error).
    pub failed: Vec<(u64, JobError)>,
    /// Samples never attempted: (sample index, reason).
    pub skipped: Vec<(u64, String)>,
}

impl CellStats {
    /// Mean of a derived per-run statistic over the completed samples.
    pub fn mean_of(&self, f: impl Fn(&RunResult) -> f64) -> f64 {
        self.runs.iter().map(f).sum::<f64>() / self.runs.len().max(1) as f64
    }

    /// The cell's degradation status: any failed sample ⇒ `Failed`, else
    /// any skipped sample ⇒ `Skipped`, else `Ok`.
    pub fn status(&self) -> CellStatus {
        if !self.failed.is_empty() {
            CellStatus::Failed
        } else if !self.skipped.is_empty() {
            CellStatus::Skipped
        } else {
            CellStatus::Ok
        }
    }
}

/// Results of a full sweep, indexed `[workload][variant]`.
#[derive(Debug, Clone)]
pub struct SweepResults {
    /// Workload names, sweep order.
    pub workloads: Vec<&'static str>,
    /// Variants, sweep order.
    pub variants: Vec<Variant>,
    /// `cells[w][v]`.
    pub cells: Vec<Vec<CellStats>>,
}

impl SweepResults {
    /// The cell for (workload index, variant index).
    pub fn cell(&self, w: usize, v: usize) -> &CellStats {
        &self.cells[w][v]
    }

    /// Degradation status of cell (w, v).
    pub fn status(&self, w: usize, v: usize) -> CellStatus {
        self.cells[w][v].status()
    }

    /// `true` when every cell completed every sample.
    pub fn all_ok(&self) -> bool {
        self.cells
            .iter()
            .flatten()
            .all(|c| c.status() == CellStatus::Ok)
    }

    /// Every degraded cell as (workload index, variant index, status), in
    /// sweep order.
    pub fn degraded(&self) -> Vec<(usize, usize, CellStatus)> {
        let mut out = Vec::new();
        for (w, row) in self.cells.iter().enumerate() {
            for (v, cell) in row.iter().enumerate() {
                let st = cell.status();
                if st != CellStatus::Ok {
                    out.push((w, v, st));
                }
            }
        }
        out
    }

    /// Mean CPI of `variant` on workload `w`, normalised to the first
    /// variant (the insecure OoO baseline in every bench). `NaN` when
    /// either cell is degraded to emptiness.
    pub fn normalized_cpi(&self, w: usize, v: usize) -> f64 {
        self.cells[w][v].cpi.mean / self.cells[w][0].cpi.mean
    }

    /// Geometric-mean normalised CPI of variant `v` across workloads.
    pub fn geomean_normalized(&self, v: usize) -> f64 {
        let vals: Vec<f64> = (0..self.workloads.len())
            .map(|w| self.normalized_cpi(w, v))
            .collect();
        nda_stats::geomean(&vals)
    }

    /// Average overhead (percent) of variant `v` vs the baseline.
    pub fn overhead_pct(&self, v: usize) -> f64 {
        (self.geomean_normalized(v) - 1.0) * 100.0
    }

    /// Total simulated cycles across every completed sample of variant `v`.
    pub fn variant_sim_cycles(&self, v: usize) -> u64 {
        self.cells
            .iter()
            .flat_map(|row| &row[v].runs)
            .map(|r| r.stats.cycles)
            .sum()
    }

    /// Total host nanoseconds spent simulating variant `v` (sum of
    /// per-sample wall clocks — CPU time, not sweep wall time, when the
    /// sweep ran in parallel).
    pub fn variant_host_ns(&self, v: usize) -> u64 {
        self.cells
            .iter()
            .flat_map(|row| &row[v].runs)
            .map(|r| r.host_ns)
            .sum()
    }

    /// Simulated cycles per host second for variant `v` across the sweep.
    /// `None` when host time was not captured.
    pub fn variant_sim_cycles_per_sec(&self, v: usize) -> Option<f64> {
        let ns = self.variant_host_ns(v);
        (ns > 0).then(|| self.variant_sim_cycles(v) as f64 * 1e9 / ns as f64)
    }

    /// Worst per-cell relative CI half-width
    /// ([`Sample::relative_error`]) across the sweep — the SMARTS
    /// convergence figure (how tightly the least-converged cell's CPI is
    /// known). `0.0` for an all-degenerate sweep.
    pub fn max_relative_error(&self) -> f64 {
        self.cells
            .iter()
            .flatten()
            .map(|c| c.cpi.relative_error())
            .filter(|e| e.is_finite())
            .fold(0.0, f64::max)
    }
}

/// The outcome of one (workload, variant, sample) cell.
// One value per cell, immediately unpacked by `aggregate`; boxing the
// (Copy, ~1 KiB) RunResult would buy nothing.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
enum SampleOutcome {
    Ok(RunResult),
    Failed(JobError),
    Skipped(String),
}

/// The stable description of a sweep's identity, pinned into a journal's
/// `meta.rec` so a journal directory cannot be resumed by a sweep of a
/// different shape. Budgets (`jobs`, `retries`, `chaos`, backoff) are
/// deliberately excluded: they change how cells are *executed*, never
/// what a completed cell's bits are — which is exactly what lets a
/// chaos-degraded journal be resumed with chaos off.
pub fn sweep_meta(workloads: &[Workload], variants: &[Variant], cfg: &SweepConfig) -> String {
    let wl: Vec<&str> = workloads.iter().map(|w| w.name).collect();
    let vs: Vec<String> = variants.iter().map(|v| v.to_string()).collect();
    let mode = match cfg.mode {
        SweepMode::Full => "full".to_string(),
        SweepMode::Sampled(sp) => format!(
            "sampled({},{},{},{},{})",
            sp.sample_every, sp.warm_insts, sp.detail_insts, sp.max_windows, sp.budget_per_phase
        ),
    };
    format!(
        "workloads=[{}] variants=[{}] samples={} iters={} seed={} deadline={} mode={}",
        wl.join(","),
        vs.join(","),
        cfg.samples,
        cfg.iters,
        cfg.seed,
        cfg.deadline_cycles,
        mode
    )
}

/// Run the sweep without a journal. See [`sweep_journaled`].
pub fn sweep(workloads: &[Workload], variants: &[Variant], cfg: SweepConfig) -> SweepResults {
    sweep_journaled(workloads, variants, cfg, None)
}

/// Run the sweep, optionally against a resume journal.
///
/// With `cfg.jobs > 1` the jobs execute on a scoped worker pool; results
/// land in pre-indexed slots and are aggregated in serial order, so the
/// output is bit-identical to `cfg.jobs == 1` (each cell is an isolated,
/// seeded simulation — no shared state, no ordering effects).
///
/// With a journal (open it via [`Journal::open`] with the
/// [`sweep_meta`] string), cells already Ok on disk are *not* re-run —
/// their journaled results are used verbatim (journaled `host_ns` is 0) —
/// and every newly finished cell is recorded crash-safely, so killing the
/// sweep at any point loses at most the in-flight cells.
///
/// This function does not panic and does not abort on job failure: a cell
/// that exhausts its retry budget is reported as
/// [`CellStatus::Failed`]/[`CellStatus::Skipped`] in the results while
/// every other cell completes normally.
pub fn sweep_journaled(
    workloads: &[Workload],
    variants: &[Variant],
    cfg: SweepConfig,
    journal: Option<(&Journal, &JournalState)>,
) -> SweepResults {
    let empty = JournalState::default();
    let (journal, state) = match journal {
        Some((j, s)) => (Some(j), s),
        None => (None, &empty),
    };
    let cells = match cfg.mode {
        SweepMode::Sampled(sp) => sweep_sampled(workloads, variants, &cfg, sp, journal, state),
        SweepMode::Full => sweep_full(workloads, variants, &cfg, journal, state),
    };
    SweepResults {
        workloads: workloads.iter().map(|w| w.name).collect(),
        variants: variants.to_vec(),
        cells,
    }
}

/// Run `total` jobs on `jobs` workers (inline when `jobs <= 1`), writing
/// each job's value into its pre-indexed slot. Workers are named
/// `nda-sweep-worker-<n>`; the calling thread participates as worker 0,
/// so the sweep completes even if every spawn fails. A slot left `None`
/// means its worker died outside panic containment (an executor bug, not
/// a job failure) — callers degrade it, they do not panic.
///
/// This is the parallel substrate under every sweep, and it is public so
/// other layers (the `nda-serve` shard workers fanning one request's
/// variants out, the load-generator bench driving concurrent clients) run
/// on the same executor instead of growing their own.
pub fn execute_jobs<T: Send>(
    total: usize,
    jobs: usize,
    run_one: impl Fn(usize) -> T + Sync,
) -> Vec<Option<T>> {
    execute(total, jobs, run_one)
}

fn execute<T: Send>(
    total: usize,
    jobs: usize,
    run_one: impl Fn(usize) -> T + Sync,
) -> Vec<Option<T>> {
    if jobs <= 1 || total <= 1 {
        return (0..total).map(|i| Some(run_one(i))).collect();
    }
    let slots: Vec<Mutex<Option<T>>> = (0..total).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let work = || loop {
        let i = next.fetch_add(1, Ordering::Relaxed);
        if i >= total {
            break;
        }
        let r = run_one(i);
        *slots[i].lock().unwrap_or_else(PoisonError::into_inner) = Some(r);
    };
    std::thread::scope(|scope| {
        for n in 1..jobs.min(total) {
            let spawned = std::thread::Builder::new()
                .name(format!("nda-sweep-worker-{n}"))
                .spawn_scoped(scope, work);
            if spawned.is_err() {
                eprintln!("warning: could not spawn sweep worker {n}; running with fewer workers");
            }
        }
        work();
    });
    slots
        .into_iter()
        .map(|m| m.into_inner().unwrap_or_else(PoisonError::into_inner))
        .collect()
}

/// Run one job attempt loop: bounded retries, deterministic backoff,
/// chaos decisions, and panic containment. `attempt_fn` receives the
/// chaos action for the attempt; any panic it raises (chaos-injected or
/// real) is contained and classified as [`JobError::Panicked`].
fn run_with_retries<T>(
    cfg: &SweepConfig,
    cell: CellKey,
    job: usize,
    mut attempt_fn: impl FnMut(ChaosAction) -> Result<T, JobError>,
) -> Result<T, JobError> {
    let policy = RetryPolicy {
        max_attempts: cfg.retries.saturating_add(1),
        backoff_base_ms: cfg.backoff_ms,
        seed: cfg.seed,
    };
    let mut last: Option<JobError> = None;
    for attempt in 0..policy.max_attempts {
        if attempt > 0 {
            let ms = policy.backoff_ms(job, attempt);
            if ms > 0 {
                std::thread::sleep(Duration::from_millis(ms));
            }
        }
        let action = cfg
            .chaos
            .map_or(ChaosAction::None, |c| c.decide(cell, attempt));
        match catch_unwind(AssertUnwindSafe(|| attempt_fn(action))) {
            Ok(Ok(t)) => return Ok(t),
            Ok(Err(e)) => last = Some(e),
            Err(payload) => {
                last = Some(JobError::Panicked {
                    message: panic_message(payload),
                })
            }
        }
    }
    Err(last.unwrap_or(JobError::Panicked {
        message: "retry budget allowed zero attempts".to_string(),
    }))
}

fn journal_record_ok(journal: Option<&Journal>, cell: CellKey, r: &RunResult) {
    if let Some(j) = journal {
        if let Err(e) = j.record_ok(cell, r) {
            // The in-memory result is still good; losing the journal
            // record only costs a re-run on resume. Warn, don't degrade.
            eprintln!("warning: {e}");
        }
    }
}

fn journal_record_failed(journal: Option<&Journal>, cell: CellKey, err: &JobError) {
    if let Some(j) = journal {
        if let Err(e) = j.record_failed(cell, err) {
            eprintln!("warning: {e}");
        }
    }
}

/// One full-detail cell under the fault budget.
fn run_cell_full(
    w: &Workload,
    v: Variant,
    cell: CellKey,
    job: usize,
    cfg: &SweepConfig,
) -> Result<RunResult, JobError> {
    run_with_retries(cfg, cell, job, |action| {
        if action == ChaosAction::Panic {
            panic!("chaos: injected panic in {}/{v}/sample{}", w.name, cell.2);
        }
        let deadline = if action == ChaosAction::Slow {
            CHAOS_SLOW_DEADLINE
        } else {
            cfg.deadline_cycles
        };
        let params = WorkloadParams {
            seed: cfg.seed + cell.2 as u64,
            iters: cfg.iters,
        };
        let prog = (w.build)(&params);
        run_variant(v, &prog, deadline).map_err(|e| JobError::from_sim(e, deadline))
    })
}

/// Full-detail execution: the unit of work is one (workload, variant,
/// sample) cell, flat index `i = ((w * nv) + v) * ns + s`.
fn sweep_full(
    workloads: &[Workload],
    variants: &[Variant],
    cfg: &SweepConfig,
    journal: Option<&Journal>,
    state: &JournalState,
) -> Vec<Vec<CellStats>> {
    let (nw, nv, ns) = (workloads.len(), variants.len(), cfg.samples as usize);
    let total = nw * nv * ns;
    let mut outcomes = execute(total, cfg.jobs, |i| {
        let cell = (i / (nv * ns), (i / ns) % nv, i % ns);
        if let Some(r) = state.ok.get(&cell) {
            return SampleOutcome::Ok(*r);
        }
        match run_cell_full(&workloads[cell.0], variants[cell.1], cell, i, cfg) {
            Ok(r) => {
                journal_record_ok(journal, cell, &r);
                SampleOutcome::Ok(r)
            }
            Err(e) => {
                journal_record_failed(journal, cell, &e);
                SampleOutcome::Failed(e)
            }
        }
    });
    // Aggregation in fixed serial order: scheduling cannot affect output.
    (0..nw)
        .map(|w| {
            (0..nv)
                .map(|v| {
                    aggregate(
                        (0..ns)
                            .map(|s| take_outcome(&mut outcomes, ((w * nv) + v) * ns + s))
                            .collect(),
                    )
                })
                .collect()
        })
        .collect()
}

fn take_outcome(outcomes: &mut [Option<SampleOutcome>], i: usize) -> SampleOutcome {
    outcomes[i].take().unwrap_or_else(|| {
        SampleOutcome::Failed(JobError::Panicked {
            message: "worker thread died outside panic containment".to_string(),
        })
    })
}

/// Sampled-mode execution. The unit of work is a **(workload, sample)**
/// set, not a (workload, variant, sample) cell: one functional
/// fast-forward collects the warmed checkpoints, and all variants reuse
/// them. A single worker order is used for any job count — each set is an
/// isolated, seeded computation, so scheduling cannot affect output and
/// the serial/parallel results are bit-identical.
fn sweep_sampled(
    workloads: &[Workload],
    variants: &[Variant],
    cfg: &SweepConfig,
    sp: SampledParams,
    journal: Option<&Journal>,
    state: &JournalState,
) -> Vec<Vec<CellStats>> {
    let (nw, nv, ns) = (workloads.len(), variants.len(), cfg.samples as usize);
    let total = nw * ns;
    // One store handle shared by every worker: entries are written
    // atomically (tmp + rename), so concurrent sets — even of the same
    // key — race benignly.
    let store = cfg.ckpt_dir.as_ref().and_then(|dir| {
        CheckpointStore::open(dir)
            .map(|s| s.with_max_bytes(cfg.ckpt_max_bytes))
            .map_err(|e| {
                eprintln!(
                    "warning: checkpoint store at {} disabled: {e}",
                    dir.display()
                );
            })
            .ok()
    });
    let sets = execute(total, cfg.jobs, |i| {
        let (w, s) = (i / ns, i % ns);
        run_set_sampled(
            &workloads[w],
            w,
            variants,
            s,
            i,
            cfg,
            sp,
            store.as_ref(),
            journal,
            state,
        )
    });
    let sets: Vec<Vec<SampleOutcome>> = sets
        .into_iter()
        .map(|o| {
            o.unwrap_or_else(|| {
                vec![
                    SampleOutcome::Skipped(
                        "worker thread died outside panic containment".to_string()
                    );
                    nv
                ]
            })
        })
        .collect();
    (0..nw)
        .map(|w| {
            (0..nv)
                .map(|v| aggregate((0..ns).map(|s| sets[w * ns + s][v].clone()).collect()))
                .collect()
        })
        .collect()
}

/// One sampled-mode (workload, sample) set: shared checkpoint collection,
/// then one detailed pass per variant. Failure containment is staged: a
/// collection failure skips every still-missing variant of the set (there
/// is nothing to restore), while a per-variant failure degrades that
/// variant alone. Variants already Ok in the journal are never re-run —
/// if *all* of them are, the collection pass is skipped entirely.
#[allow(clippy::too_many_arguments)]
fn run_set_sampled(
    w: &Workload,
    w_idx: usize,
    variants: &[Variant],
    s: usize,
    job: usize,
    cfg: &SweepConfig,
    sp: SampledParams,
    store: Option<&CheckpointStore>,
    journal: Option<&Journal>,
    state: &JournalState,
) -> Vec<SampleOutcome> {
    let mut out: Vec<Option<SampleOutcome>> = (0..variants.len())
        .map(|v_idx| {
            state
                .ok
                .get(&(w_idx, v_idx, s))
                .map(|r| SampleOutcome::Ok(*r))
        })
        .collect();
    if out.iter().all(Option::is_some) {
        return out.into_iter().flatten().collect();
    }
    let collect_cell = (w_idx, Chaos::COLLECT_STAGE as usize, s);
    let collected = run_with_retries(cfg, collect_cell, job, |action| {
        if action == ChaosAction::Panic {
            panic!("chaos: injected panic in {}/checkpoints/sample{s}", w.name);
        }
        let max_insts = if action == ChaosAction::Slow {
            CHAOS_SLOW_DEADLINE
        } else {
            cfg.deadline_cycles
        };
        let params = WorkloadParams {
            seed: cfg.seed + s as u64,
            iters: cfg.iters,
        };
        let prog = (w.build)(&params);
        // A warm store hit skips the fast-forward entirely; it is
        // bit-identical to a fresh collection (the store round-trips
        // exactly and its key covers workload, schedule and geometry), so
        // caching cannot perturb sweep output.
        collect_checkpoints_cached(
            store,
            &SimConfig::for_variant(variants[0]),
            &prog,
            sp,
            max_insts,
        )
        .map(|(set, _warm)| (prog, set))
        .map_err(|e| JobError::from_sim(e, max_insts))
    });
    let (prog, set) = match collected {
        Ok(ps) => ps,
        Err(e) => {
            let reason = format!("checkpoint collection failed: {e}");
            for slot in out.iter_mut().filter(|s| s.is_none()) {
                *slot = Some(SampleOutcome::Skipped(reason.clone()));
            }
            return out.into_iter().flatten().collect();
        }
    };
    for (v_idx, &v) in variants.iter().enumerate() {
        if out[v_idx].is_some() {
            continue;
        }
        let cell = (w_idx, v_idx, s);
        let r = run_with_retries(cfg, cell, job, |action| {
            if action == ChaosAction::Panic {
                panic!("chaos: injected panic in {}/{v}/sample{s}", w.name);
            }
            let sp_run = if action == ChaosAction::Slow {
                SampledParams {
                    budget_per_phase: CHAOS_SLOW_DEADLINE,
                    ..sp
                }
            } else {
                sp
            };
            let t = Instant::now();
            run_sampled_with(SimConfig::for_variant(v), &prog, &set, sp_run)
                .map(|mut r| {
                    // Marginal cost of this variant's windows only; the
                    // shared functional pass is amortised across the set.
                    r.host_ns = t.elapsed().as_nanos() as u64;
                    r
                })
                .map_err(|e| JobError::from_sim(e, sp_run.budget_per_phase))
        });
        out[v_idx] = Some(match r {
            Ok(r) => {
                journal_record_ok(journal, cell, &r);
                SampleOutcome::Ok(r)
            }
            Err(e) => {
                journal_record_failed(journal, cell, &e);
                SampleOutcome::Failed(e)
            }
        });
    }
    out.into_iter().flatten().collect()
}

/// Aggregate one cell's sample outcomes (sample order) into [`CellStats`].
fn aggregate(outcomes: Vec<SampleOutcome>) -> CellStats {
    let mut runs = Vec::new();
    let mut failed = Vec::new();
    let mut skipped = Vec::new();
    for (s, o) in outcomes.into_iter().enumerate() {
        match o {
            SampleOutcome::Ok(r) => runs.push(r),
            SampleOutcome::Failed(e) => failed.push((s as u64, e)),
            SampleOutcome::Skipped(reason) => skipped.push((s as u64, reason)),
        }
    }
    // Sampled runs carry an exact window-mean CPI; full runs derive it
    // from the cycle/instruction counters.
    let cpis: Vec<f64> = runs
        .iter()
        .map(|r| r.sampled.map_or_else(|| r.cpi(), |sp| sp.cpi.mean))
        .collect();
    CellStats {
        cpi: Sample::from_values(&cpis),
        runs,
        failed,
        skipped,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg(jobs: usize) -> SweepConfig {
        SweepConfig {
            samples: 2,
            iters: 6,
            jobs,
            backoff_ms: 0,
            ..SweepConfig::default()
        }
    }

    #[test]
    fn tiny_sweep_has_sane_shape() {
        let wl = &nda_workloads::all()[..2];
        let variants = [Variant::Ooo, Variant::InOrder];
        let r = sweep(wl, &variants, tiny_cfg(1));
        assert_eq!(r.cells.len(), 2);
        assert_eq!(r.cells[0].len(), 2);
        assert!(r.all_ok());
        assert!(r.degraded().is_empty());
        // In-order is slower than OoO on every workload.
        for w in 0..2 {
            assert!(r.normalized_cpi(w, 1) > 1.0, "{}", r.workloads[w]);
        }
        assert!(r.overhead_pct(1) > 0.0);
        assert!((r.normalized_cpi(0, 0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn throughput_accessors_cover_all_samples() {
        let wl = &nda_workloads::all()[..1];
        let variants = [Variant::Ooo];
        let r = sweep(wl, &variants, tiny_cfg(2));
        assert_eq!(r.cells[0][0].runs.len(), 2);
        assert!(r.variant_sim_cycles(0) > 0);
        // run_variant captures host time for every sample.
        assert!(r.variant_host_ns(0) > 0);
        assert!(r.variant_sim_cycles_per_sec(0).unwrap() > 0.0);
    }

    #[test]
    fn targeted_chaos_degrades_one_cell_and_nothing_else() {
        crate::fault::silence_contained_panics();
        let wl = &nda_workloads::all()[..2];
        let variants = [Variant::Ooo, Variant::InOrder];
        let mut cfg = tiny_cfg(2);
        cfg.chaos = Some(Chaos {
            target: Some((1, 0, 1)),
            ..Chaos::default()
        });
        let r = sweep(wl, &variants, cfg);
        assert_eq!(r.status(1, 0), CellStatus::Failed);
        assert_eq!(r.degraded(), vec![(1, 0, CellStatus::Failed)]);
        let cell = r.cell(1, 0);
        assert_eq!(cell.runs.len(), 1, "the other sample completed");
        assert_eq!(cell.failed.len(), 1);
        let (s, err) = &cell.failed[0];
        assert_eq!(*s, 1);
        assert!(matches!(err, JobError::Panicked { .. }), "{err}");
        assert!(err.to_string().contains("chaos"), "{err}");
        // Siblings are untouched.
        assert_eq!(r.status(0, 0), CellStatus::Ok);
        assert_eq!(r.status(0, 1), CellStatus::Ok);
        assert_eq!(r.status(1, 1), CellStatus::Ok);
    }

    #[test]
    fn chaos_slow_jobs_degrade_to_deadline_exceeded() {
        let wl = &nda_workloads::all()[..1];
        let variants = [Variant::Ooo];
        let mut cfg = tiny_cfg(1);
        cfg.retries = 0;
        // 100% slow: every attempt runs with the tiny chaos deadline.
        cfg.chaos = Some(Chaos {
            seed: 3,
            slow_pct: 100,
            ..Chaos::default()
        });
        let r = sweep(wl, &variants, cfg);
        assert_eq!(r.status(0, 0), CellStatus::Failed);
        for (_, err) in &r.cell(0, 0).failed {
            assert!(
                matches!(
                    err,
                    JobError::DeadlineExceeded {
                        limit: CHAOS_SLOW_DEADLINE,
                        ..
                    }
                ),
                "{err}"
            );
        }
    }

    #[test]
    fn from_env_with_defaults_and_overrides() {
        let none = |_k: &str| None;
        let d = SweepConfig::from_env_with(&none);
        assert_eq!(d.samples, 3);
        assert_eq!(d.iters, 400);
        assert_eq!(d.mode, SweepMode::Full);
        assert_eq!(d.retries, 1);
        assert_eq!(d.deadline_cycles, SWEEP_MAX_CYCLES);
        assert!(d.chaos.is_none());

        let set = |k: &str| {
            Some(
                match k {
                    "NDA_SAMPLES" => "5",
                    "NDA_ITERS" => "77",
                    "NDA_JOBS" => "2",
                    "NDA_SAMPLE_EVERY" => "10000",
                    "NDA_WARM" => "111",
                    "NDA_DETAIL" => "222",
                    "NDA_RETRIES" => "4",
                    "NDA_DEADLINE_CYCLES" => "123456",
                    _ => return None,
                }
                .to_string(),
            )
        };
        let c = SweepConfig::from_env_with(&set);
        assert_eq!(c.samples, 5);
        assert_eq!(c.iters, 77);
        assert_eq!(c.jobs, 2);
        assert_eq!(c.retries, 4);
        assert_eq!(c.deadline_cycles, 123_456);
        match c.mode {
            SweepMode::Sampled(sp) => {
                assert_eq!(sp.sample_every, 10_000);
                assert_eq!(sp.warm_insts, 111);
                assert_eq!(sp.detail_insts, 222);
            }
            SweepMode::Full => panic!("NDA_SAMPLE_EVERY must switch to sampled mode"),
        }
    }

    #[test]
    fn from_env_with_warns_and_defaults_on_unparsable_values() {
        // Every variable individually bogus must fall back to its default
        // rather than abort or poison the others.
        for var in [
            "NDA_SAMPLES",
            "NDA_ITERS",
            "NDA_JOBS",
            "NDA_SAMPLE_EVERY",
            "NDA_WARM",
            "NDA_DETAIL",
            "NDA_RETRIES",
            "NDA_DEADLINE_CYCLES",
        ] {
            let get = |k: &str| (k == var).then(|| "not-a-number".to_string());
            let c = SweepConfig::from_env_with(&get);
            let d = SweepConfig::from_env_with(&|_| None);
            assert_eq!(c.samples, d.samples, "{var}");
            assert_eq!(c.iters, d.iters, "{var}");
            assert_eq!(c.jobs, d.jobs, "{var}");
            assert_eq!(c.mode, d.mode, "{var}");
            assert_eq!(c.retries, d.retries, "{var}");
            assert_eq!(c.deadline_cycles, d.deadline_cycles, "{var}");
        }
        // A bogus NDA_WARM with sampling on keeps the warm default but
        // honours the sample interval.
        let get = |k: &str| match k {
            "NDA_SAMPLE_EVERY" => Some("5000".to_string()),
            "NDA_WARM" => Some("bogus".to_string()),
            _ => None,
        };
        match SweepConfig::from_env_with(&get).mode {
            SweepMode::Sampled(sp) => {
                assert_eq!(sp.sample_every, 5_000);
                assert_eq!(sp.warm_insts, 2_000);
            }
            SweepMode::Full => panic!("sampled mode expected"),
        }
    }
}
