//! The workload × variant × sample sweep behind Fig 7 and Fig 9.

use nda_core::{run_variant, RunResult, Variant};
use nda_stats::Sample;
use nda_workloads::{Workload, WorkloadParams};

/// Cycle budget per sample (generous: the in-order core is slow).
pub const SWEEP_MAX_CYCLES: u64 = 2_000_000_000;

/// Sweep sizing.
#[derive(Debug, Clone, Copy)]
pub struct SweepConfig {
    /// Seeded samples per cell (SMARTS-style independent measurements).
    pub samples: u64,
    /// Workload outer iterations per sample.
    pub iters: u64,
}

impl SweepConfig {
    /// Read `NDA_SAMPLES` / `NDA_ITERS` from the environment, with
    /// defaults suited to `cargo bench` (3 samples, 400 iterations).
    pub fn from_env() -> SweepConfig {
        let get = |k: &str, d: u64| {
            std::env::var(k)
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(d)
        };
        SweepConfig {
            samples: get("NDA_SAMPLES", 3),
            iters: get("NDA_ITERS", 400),
        }
    }
}

/// Aggregated statistics for one (workload, variant) cell.
#[derive(Debug, Clone)]
pub struct CellStats {
    /// Mean CPI with 95 % CI across samples.
    pub cpi: Sample,
    /// Raw per-sample results (for the Fig 9 derived statistics).
    pub runs: Vec<RunResult>,
}

impl CellStats {
    /// Mean of a derived per-run statistic.
    pub fn mean_of(&self, f: impl Fn(&RunResult) -> f64) -> f64 {
        let vals: Vec<f64> = self.runs.iter().map(f).collect();
        vals.iter().sum::<f64>() / vals.len().max(1) as f64
    }
}

/// Results of a full sweep, indexed `[workload][variant]`.
#[derive(Debug, Clone)]
pub struct SweepResults {
    /// Workload names, sweep order.
    pub workloads: Vec<&'static str>,
    /// Variants, sweep order.
    pub variants: Vec<Variant>,
    /// `cells[w][v]`.
    pub cells: Vec<Vec<CellStats>>,
}

impl SweepResults {
    /// The cell for (workload index, variant index).
    pub fn cell(&self, w: usize, v: usize) -> &CellStats {
        &self.cells[w][v]
    }

    /// Mean CPI of `variant` on workload `w`, normalised to the first
    /// variant (the insecure OoO baseline in every bench).
    pub fn normalized_cpi(&self, w: usize, v: usize) -> f64 {
        self.cells[w][v].cpi.mean / self.cells[w][0].cpi.mean
    }

    /// Geometric-mean normalised CPI of variant `v` across workloads.
    pub fn geomean_normalized(&self, v: usize) -> f64 {
        let vals: Vec<f64> = (0..self.workloads.len())
            .map(|w| self.normalized_cpi(w, v))
            .collect();
        nda_stats::geomean(&vals)
    }

    /// Average overhead (percent) of variant `v` vs the baseline.
    pub fn overhead_pct(&self, v: usize) -> f64 {
        (self.geomean_normalized(v) - 1.0) * 100.0
    }
}

/// Run the sweep.
///
/// # Panics
///
/// Panics if any sample fails to halt — workloads are self-terminating,
/// so a failure is a simulator bug.
pub fn sweep(workloads: &[Workload], variants: &[Variant], cfg: SweepConfig) -> SweepResults {
    let mut cells = Vec::with_capacity(workloads.len());
    for w in workloads {
        let mut row = Vec::with_capacity(variants.len());
        for &v in variants {
            let mut runs = Vec::new();
            for s in 0..cfg.samples {
                let params = WorkloadParams {
                    seed: 1000 + s,
                    iters: cfg.iters,
                };
                let prog = (w.build)(&params);
                let r = run_variant(v, &prog, SWEEP_MAX_CYCLES)
                    .unwrap_or_else(|e| panic!("{}/{v}/sample{s}: {e}", w.name));
                runs.push(r);
            }
            let cpis: Vec<f64> = runs.iter().map(|r| r.cpi()).collect();
            row.push(CellStats {
                cpi: Sample::from_values(&cpis),
                runs,
            });
        }
        cells.push(row);
    }
    SweepResults {
        workloads: workloads.iter().map(|w| w.name).collect(),
        variants: variants.to_vec(),
        cells,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_sweep_has_sane_shape() {
        let wl = &nda_workloads::all()[..2];
        let variants = [Variant::Ooo, Variant::InOrder];
        let r = sweep(
            wl,
            &variants,
            SweepConfig {
                samples: 2,
                iters: 6,
            },
        );
        assert_eq!(r.cells.len(), 2);
        assert_eq!(r.cells[0].len(), 2);
        // In-order is slower than OoO on every workload.
        for w in 0..2 {
            assert!(r.normalized_cpi(w, 1) > 1.0, "{}", r.workloads[w]);
        }
        assert!(r.overhead_pct(1) > 0.0);
        assert!((r.normalized_cpi(0, 0) - 1.0).abs() < 1e-12);
    }
}
