//! Plain-text renderers shared by the bench targets.
//!
//! Allocation audit (perf PR): each helper allocates one `String` per
//! call, and the bench targets call them once per *rendered cell* — a few
//! hundred allocations per run, after simulation has finished. This is a
//! cold reporting path; buffer-reuse APIs here would complicate every
//! bench for no measurable gain, so the per-call allocations stay.

use nda_stats::{CpiClass, CpiStack, Sample};

/// `mean ± ci` with two decimals.
pub fn fmt_ci(s: &Sample) -> String {
    format!("{:.3} ± {:.3}", s.mean, s.ci95)
}

/// A horizontal bar scaled so `full` maps to `width` characters — the
/// text-mode analogue of the paper's bar charts.
pub fn bar(value: f64, full: f64, width: usize) -> String {
    let n = ((value / full) * width as f64)
        .round()
        .clamp(0.0, 4.0 * width as f64) as usize;
    "#".repeat(n)
}

/// A dashed rule as wide as `header`, printed beneath it.
pub fn header_rule(header: &str) -> String {
    "-".repeat(header.len())
}

/// Compact column header for a CPI class, short enough that all eleven
/// classes fit one table row.
pub fn cpi_class_short(c: CpiClass) -> &'static str {
    match c {
        CpiClass::Commit => "commit",
        CpiClass::FrontendFetch => "fetch",
        CpiClass::FrontendSquash => "squash",
        CpiClass::BackendIqFull => "iq",
        CpiClass::BackendRobFull => "rob",
        CpiClass::BackendLsqFull => "lsq",
        CpiClass::BackendExec => "exec",
        CpiClass::MemL1 => "l1",
        CpiClass::MemL2 => "l2",
        CpiClass::MemDram => "dram",
        CpiClass::NdaDelay => "nda",
    }
}

/// The Fig 9-style stacked-CPI table: one row per labelled stack, each
/// class shown as a fraction of that row's own total, plus the total
/// normalised to the *first* row (the baseline). Markdown-compatible
/// pipes so EXPERIMENTS.md can embed the output verbatim.
pub fn cpi_stack_table(rows: &[(String, CpiStack)]) -> String {
    let mut out = String::new();
    out.push_str(&format!("| {:<20}", "variant"));
    for class in CpiClass::all() {
        out.push_str(&format!(" | {:>6}", cpi_class_short(class)));
    }
    out.push_str(" | rel.cycles |\n");
    out.push_str(&format!("|{:-<21}", ""));
    for _ in CpiClass::all() {
        out.push_str(&format!("|{:-<8}", ""));
    }
    out.push_str(&format!("|{:-<12}|\n", ""));
    let base = rows.first().map_or(0, |(_, s)| s.total()).max(1) as f64;
    for (label, stack) in rows {
        let total = stack.total().max(1) as f64;
        out.push_str(&format!("| {label:<20}"));
        for (_, cycles) in stack.entries() {
            out.push_str(&format!(" | {:>6.3}", cycles as f64 / total));
        }
        out.push_str(&format!(" | {:>9.2}x |\n", stack.total() as f64 / base));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bar_scales() {
        assert_eq!(bar(1.0, 1.0, 10).len(), 10);
        assert_eq!(bar(0.5, 1.0, 10).len(), 5);
        assert_eq!(bar(0.0, 1.0, 10).len(), 0);
        // Values beyond `full` keep growing but are capped.
        assert!(bar(100.0, 1.0, 10).len() <= 40);
    }

    #[test]
    fn fmt_ci_shows_both_terms() {
        let s = Sample::from_values(&[1.0, 2.0, 3.0]);
        let out = fmt_ci(&s);
        assert!(out.contains('±'));
        assert!(out.starts_with("2.000"));
    }

    #[test]
    fn rule_matches_header() {
        assert_eq!(header_rule("abc").len(), 3);
    }

    #[test]
    fn cpi_stack_table_partitions_and_normalises() {
        let mut base = CpiStack::new();
        base.add(CpiClass::Commit, 50);
        base.add(CpiClass::MemDram, 50);
        let mut strict = CpiStack::new();
        strict.add(CpiClass::Commit, 50);
        strict.add(CpiClass::MemDram, 100);
        strict.add(CpiClass::NdaDelay, 50);
        let rows = vec![("OoO".to_string(), base), ("Strict".to_string(), strict)];
        let out = cpi_stack_table(&rows);
        // Every class appears in the header, rel.cycles is vs the first row.
        for class in CpiClass::all() {
            assert!(out.contains(cpi_class_short(class)), "{out}");
        }
        assert!(out.contains("1.00x"), "{out}");
        assert!(out.contains("2.00x"), "{out}");
        // Each row's fractions sum to ~1.
        let strict_row = out.lines().find(|l| l.contains("Strict")).unwrap();
        let sum: f64 = strict_row
            .split('|')
            .filter_map(|c| c.trim().parse::<f64>().ok())
            .sum();
        assert!((sum - 1.0).abs() < 0.01, "{strict_row}");
    }
}
