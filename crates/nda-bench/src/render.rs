//! Plain-text renderers shared by the bench targets.
//!
//! Allocation audit (perf PR): each helper allocates one `String` per
//! call, and the bench targets call them once per *rendered cell* — a few
//! hundred allocations per run, after simulation has finished. This is a
//! cold reporting path; buffer-reuse APIs here would complicate every
//! bench for no measurable gain, so the per-call allocations stay.

use nda_stats::Sample;

/// `mean ± ci` with two decimals.
pub fn fmt_ci(s: &Sample) -> String {
    format!("{:.3} ± {:.3}", s.mean, s.ci95)
}

/// A horizontal bar scaled so `full` maps to `width` characters — the
/// text-mode analogue of the paper's bar charts.
pub fn bar(value: f64, full: f64, width: usize) -> String {
    let n = ((value / full) * width as f64)
        .round()
        .clamp(0.0, 4.0 * width as f64) as usize;
    "#".repeat(n)
}

/// A dashed rule as wide as `header`, printed beneath it.
pub fn header_rule(header: &str) -> String {
    "-".repeat(header.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bar_scales() {
        assert_eq!(bar(1.0, 1.0, 10).len(), 10);
        assert_eq!(bar(0.5, 1.0, 10).len(), 5);
        assert_eq!(bar(0.0, 1.0, 10).len(), 0);
        // Values beyond `full` keep growing but are capped.
        assert!(bar(100.0, 1.0, 10).len() <= 40);
    }

    #[test]
    fn fmt_ci_shows_both_terms() {
        let s = Sample::from_values(&[1.0, 2.0, 3.0]);
        let out = fmt_ci(&s);
        assert!(out.contains('±'));
        assert!(out.starts_with("2.000"));
    }

    #[test]
    fn rule_matches_header() {
        assert_eq!(header_rule("abc").len(), 3);
    }
}
