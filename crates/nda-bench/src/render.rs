//! Plain-text renderers shared by the bench targets.
//!
//! Allocation audit (perf PR): each helper allocates one `String` per
//! call, and the bench targets call them once per *rendered cell* — a few
//! hundred allocations per run, after simulation has finished. This is a
//! cold reporting path; buffer-reuse APIs here would complicate every
//! bench for no measurable gain, so the per-call allocations stay.

use crate::sweep::{CellStatus, SweepResults};
use nda_stats::{escape_json, CpiClass, CpiStack, MetricsRegistry, Sample};

/// `mean ± ci` with two decimals.
pub fn fmt_ci(s: &Sample) -> String {
    format!("{:.3} ± {:.3}", s.mean, s.ci95)
}

/// A horizontal bar scaled so `full` maps to `width` characters — the
/// text-mode analogue of the paper's bar charts.
pub fn bar(value: f64, full: f64, width: usize) -> String {
    let n = ((value / full) * width as f64)
        .round()
        .clamp(0.0, 4.0 * width as f64) as usize;
    "#".repeat(n)
}

/// A dashed rule as wide as `header`, printed beneath it.
pub fn header_rule(header: &str) -> String {
    "-".repeat(header.len())
}

/// Compact column header for a CPI class, short enough that all eleven
/// classes fit one table row.
pub fn cpi_class_short(c: CpiClass) -> &'static str {
    match c {
        CpiClass::Commit => "commit",
        CpiClass::FrontendFetch => "fetch",
        CpiClass::FrontendSquash => "squash",
        CpiClass::BackendIqFull => "iq",
        CpiClass::BackendRobFull => "rob",
        CpiClass::BackendLsqFull => "lsq",
        CpiClass::BackendExec => "exec",
        CpiClass::MemL1 => "l1",
        CpiClass::MemL2 => "l2",
        CpiClass::MemDram => "dram",
        CpiClass::NdaDelay => "nda",
    }
}

/// The Fig 9-style stacked-CPI table: one row per labelled stack, each
/// class shown as a fraction of that row's own total, plus the total
/// normalised to the *first* row (the baseline). Markdown-compatible
/// pipes so EXPERIMENTS.md can embed the output verbatim.
pub fn cpi_stack_table(rows: &[(String, CpiStack)]) -> String {
    let mut out = String::new();
    out.push_str(&format!("| {:<20}", "variant"));
    for class in CpiClass::all() {
        out.push_str(&format!(" | {:>6}", cpi_class_short(class)));
    }
    out.push_str(" | rel.cycles |\n");
    out.push_str(&format!("|{:-<21}", ""));
    for _ in CpiClass::all() {
        out.push_str(&format!("|{:-<8}", ""));
    }
    out.push_str(&format!("|{:-<12}|\n", ""));
    let base = rows.first().map_or(0, |(_, s)| s.total()).max(1) as f64;
    for (label, stack) in rows {
        let total = stack.total().max(1) as f64;
        out.push_str(&format!("| {label:<20}"));
        for (_, cycles) in stack.entries() {
            out.push_str(&format!(" | {:>6.3}", cycles as f64 / total));
        }
        out.push_str(&format!(" | {:>9.2}x |\n", stack.total() as f64 / base));
    }
    out
}

/// The normalised-CPI sweep table (the CLI's mini Fig 7): one row per
/// workload, one column per variant, each cell the variant's mean CPI
/// normalised to the first variant. Degraded cells are never silently
/// omitted: a cell with a failed sample renders `FAILED`, a never-run
/// cell `SKIPPED`, and each degraded cell gets a trailing `#` detail line
/// naming the samples and errors involved. An Ok cell whose baseline
/// (first-variant) cell is degraded has no denominator and renders its
/// **absolute** CPI as `=N.NNN` instead of a normalised ratio.
pub fn sweep_table(r: &SweepResults) -> String {
    let mut out = String::new();
    out.push_str(&format!("{:<12}", "workload"));
    for v in &r.variants {
        out.push_str(&format!("{:>20}", v.name()));
    }
    out.push('\n');
    for (w, name) in r.workloads.iter().enumerate() {
        out.push_str(&format!("{name:<12}"));
        let base_ok = r.status(w, 0) == CellStatus::Ok;
        for v in 0..r.variants.len() {
            match r.status(w, v) {
                CellStatus::Ok if base_ok => {
                    out.push_str(&format!("{:>20.3}", r.normalized_cpi(w, v)))
                }
                CellStatus::Ok => {
                    let abs = format!("={:.3}", r.cell(w, v).cpi.mean);
                    out.push_str(&format!("{abs:>20}"))
                }
                st => out.push_str(&format!("{:>20}", st.label().to_uppercase())),
            }
        }
        out.push('\n');
    }
    for (w, v, st) in r.degraded() {
        let cell = r.cell(w, v);
        out.push_str(&format!(
            "# {}/{} {}:",
            r.workloads[w],
            r.variants[v].name(),
            st.label()
        ));
        for (s, err) in &cell.failed {
            let first_line = err.to_string();
            let first_line = first_line.lines().next().unwrap_or("").to_string();
            out.push_str(&format!(
                " sample {s}: {} ({first_line});",
                err.kind_label()
            ));
        }
        for (s, reason) in &cell.skipped {
            let first_line = reason.lines().next().unwrap_or("");
            out.push_str(&format!(" sample {s}: skipped ({first_line});"));
        }
        out.push('\n');
    }
    out
}

/// The `nda-metrics-v1` JSON document for a sweep: per (workload, variant)
/// the registries of every completed sample merged, plus the cell's
/// degradation status — `"status":"ok|failed|skipped"` and, for degraded
/// cells, an `"error"` string. Consumers that predate degradation see the
/// same shape for all-Ok sweeps (the new keys are additive).
pub fn metrics_document(
    r: &SweepResults,
    samples: u64,
    iters: u64,
    seed: u64,
    sample_every: u64,
) -> String {
    let mut out = String::new();
    out.push_str("{\"schema\":\"nda-metrics-v1\",");
    out.push_str(&format!(
        "\"samples\":{samples},\"iters\":{iters},\"seed\":{seed},\"sample_every\":{sample_every},"
    ));
    out.push_str("\"workloads\":[\n");
    for (w, workload) in r.workloads.iter().enumerate() {
        if w > 0 {
            out.push_str(",\n");
        }
        out.push_str(&format!("{{\"workload\":\"{workload}\",\"variants\":[\n"));
        for (v, variant) in r.variants.iter().enumerate() {
            if v > 0 {
                out.push_str(",\n");
            }
            let cell = r.cell(w, v);
            let mut merged = MetricsRegistry::new();
            for run in &cell.runs {
                merged.merge(&run.metrics());
            }
            out.push_str(&format!(
                "{{\"variant\":\"{}\",\"status\":\"{}\",",
                variant.name(),
                cell.status().label()
            ));
            if cell.status() != CellStatus::Ok {
                let mut detail = String::new();
                for (s, err) in &cell.failed {
                    let first = err.to_string();
                    let first = first.lines().next().unwrap_or("").to_string();
                    detail.push_str(&format!("sample {s}: {first}; "));
                }
                for (s, reason) in &cell.skipped {
                    let first = reason.lines().next().unwrap_or("");
                    detail.push_str(&format!("sample {s}: skipped: {first}; "));
                }
                out.push_str(&format!("\"error\":{},", escape_json(detail.trim_end())));
            }
            out.push_str(&format!("\"metrics\":{}}}", merged.to_json()));
        }
        out.push_str("\n]}");
    }
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bar_scales() {
        assert_eq!(bar(1.0, 1.0, 10).len(), 10);
        assert_eq!(bar(0.5, 1.0, 10).len(), 5);
        assert_eq!(bar(0.0, 1.0, 10).len(), 0);
        // Values beyond `full` keep growing but are capped.
        assert!(bar(100.0, 1.0, 10).len() <= 40);
    }

    #[test]
    fn fmt_ci_shows_both_terms() {
        let s = Sample::from_values(&[1.0, 2.0, 3.0]);
        let out = fmt_ci(&s);
        assert!(out.contains('±'));
        assert!(out.starts_with("2.000"));
    }

    #[test]
    fn rule_matches_header() {
        assert_eq!(header_rule("abc").len(), 3);
    }

    #[test]
    fn cpi_stack_table_partitions_and_normalises() {
        let mut base = CpiStack::new();
        base.add(CpiClass::Commit, 50);
        base.add(CpiClass::MemDram, 50);
        let mut strict = CpiStack::new();
        strict.add(CpiClass::Commit, 50);
        strict.add(CpiClass::MemDram, 100);
        strict.add(CpiClass::NdaDelay, 50);
        let rows = vec![("OoO".to_string(), base), ("Strict".to_string(), strict)];
        let out = cpi_stack_table(&rows);
        // Every class appears in the header, rel.cycles is vs the first row.
        for class in CpiClass::all() {
            assert!(out.contains(cpi_class_short(class)), "{out}");
        }
        assert!(out.contains("1.00x"), "{out}");
        assert!(out.contains("2.00x"), "{out}");
        // Each row's fractions sum to ~1.
        let strict_row = out.lines().find(|l| l.contains("Strict")).unwrap();
        let sum: f64 = strict_row
            .split('|')
            .filter_map(|c| c.trim().parse::<f64>().ok())
            .sum();
        assert!((sum - 1.0).abs() < 0.01, "{strict_row}");
    }
}
