//! # Benchmark harness for the NDA reproduction
//!
//! Shared machinery behind the `benches/` targets that regenerate every
//! table and figure of the paper (see DESIGN.md §5 for the index):
//!
//! * [`mod@sweep`] — run workloads × variants × seeded samples and aggregate
//!   CPI and the Fig 9 statistics with 95 % confidence intervals.
//! * [`render`] — plain-text table/series renderers shared by the bench
//!   targets so `cargo bench` output is directly comparable to the paper.
//!
//! Environment knobs (all optional):
//! * `NDA_SAMPLES` — seeded samples per (workload, variant) cell
//!   (default 3).
//! * `NDA_ITERS` — workload outer iterations (default 400).
//! * `NDA_JOBS` — sweep worker threads (default: available parallelism;
//!   `1` is the serial loop; any value yields bit-identical results).
//! * `NDA_SAMPLE_EVERY` — switch the sweep to sampled simulation with a
//!   checkpoint every N instructions (`0` = full detail, the default).
//! * `NDA_WARM` / `NDA_DETAIL` — per-window warm / measure instruction
//!   counts in sampled mode (default 2000 each).

#![forbid(unsafe_code)]

pub mod render;
pub mod sweep;

pub use render::{bar, cpi_class_short, cpi_stack_table, fmt_ci, header_rule};
pub use sweep::{sweep, CellStats, SweepConfig, SweepMode, SweepResults};
