//! # Benchmark harness for the NDA reproduction
//!
//! Shared machinery behind the `benches/` targets that regenerate every
//! table and figure of the paper (see DESIGN.md §5 for the index):
//!
//! * [`mod@sweep`] — run workloads × variants × seeded samples and aggregate
//!   CPI and the Fig 9 statistics with 95 % confidence intervals.
//! * [`render`] — plain-text table/series renderers shared by the bench
//!   targets so `cargo bench` output is directly comparable to the paper.
//! * [`mod@mitigation`] — the software-mitigation axis: harden every
//!   workload under blanket secret labeling and price hardware-NDA vs
//!   software rewriting vs both, Fig-7 style.
//!
//! * [`mod@fault`] — job isolation: the [`fault::JobError`] taxonomy,
//!   bounded retries with deterministic backoff, and seeded chaos
//!   injection ([`fault::Chaos`]).
//! * [`mod@journal`] — crash-safe resume: checksummed per-cell records
//!   written atomically, corrupt records quarantined on load.
//!
//! Environment knobs (all optional):
//! * `NDA_SAMPLES` — seeded samples per (workload, variant) cell
//!   (default 3).
//! * `NDA_ITERS` — workload outer iterations (default 400).
//! * `NDA_JOBS` — sweep worker threads (default: available parallelism;
//!   `1` is the serial loop; any value yields bit-identical results).
//! * `NDA_SAMPLE_EVERY` — switch the sweep to sampled simulation with a
//!   checkpoint every N instructions (`0` = full detail, the default).
//! * `NDA_WARM` / `NDA_DETAIL` — per-window warm / measure instruction
//!   counts in sampled mode (default 2000 each).
//! * `NDA_RETRIES` — extra attempts per failed sweep job (default 1).
//! * `NDA_DEADLINE_CYCLES` — per-job cycle deadline (default 2e9).

#![forbid(unsafe_code)]

pub mod fault;
pub mod hw_compare;
pub mod journal;
pub mod mitigation;
pub mod render;
pub mod sweep;

pub use fault::{
    panic_message, silence_contained_panics, Chaos, ChaosAction, JobError, RetryPolicy,
};
pub use hw_compare::{family, family_geomean, hw_comparison_table, hw_comparison_variants};
pub use journal::{fingerprint, CellKey, Journal, JournalError, JournalState};
pub use mitigation::{
    blanket_spec, mitigation_sweep, mitigation_table, HardeningStats, MitigationConfig,
    MitigationResults,
};
pub use render::{
    bar, cpi_class_short, cpi_stack_table, fmt_ci, header_rule, metrics_document, sweep_table,
};
pub use sweep::{
    execute_jobs, sweep, sweep_journaled, sweep_meta, CellStats, CellStatus, SweepConfig,
    SweepMode, SweepResults,
};
