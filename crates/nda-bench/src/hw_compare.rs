//! Fig 7-style hardware-defense comparison across *mechanism families*:
//! NDA broadcast-delay vs InvisiSpec invisible loads vs STT taint
//! tracking vs ShadowBinding untaint realizations.
//!
//! The paper's Fig 7 prices NDA's rows against the unprotected baseline;
//! this module widens the figure to the related-work defenses the repo
//! models, grouped by family so the structural argument is visible in one
//! table: delaying *all* wakeups (NDA strict) costs more than delaying
//! only *transmitting* uses of tainted data (STT/ShadowBinding), which in
//! turn covers channels the load-hiding defenses (InvisiSpec,
//! delay-on-miss) miss entirely — coverage is priced by the verdict
//! matrix (`AttackKind::expected_blocked`), cost by this table.
//!
//! Overheads come from a normal [`SweepResults`] whose variant 0 is the
//! Base OoO core; the table is a pure renderer plus family bookkeeping,
//! so any sweep (full, sampled, journaled) can feed it.

use crate::sweep::SweepResults;
use nda_core::Variant;
use std::fmt::Write as _;

/// Mechanism family of a variant (table grouping and per-family geomean).
pub fn family(v: Variant) -> &'static str {
    match v {
        Variant::Ooo | Variant::InOrder => "baseline",
        Variant::Permissive
        | Variant::PermissiveBr
        | Variant::Strict
        | Variant::StrictBr
        | Variant::RestrictedLoads
        | Variant::FullProtection => "nda",
        Variant::InvisiSpecSpectre | Variant::InvisiSpecFuture => "invisispec",
        Variant::DelayOnMiss => "delay-on-miss",
        Variant::SttSpectre | Variant::SttFuturistic => "stt",
        Variant::ShadowBindingEager | Variant::ShadowBindingLazy => "shadow-binding",
    }
}

/// The comparison column set: Base OoO first (sweeps normalise against
/// variant 0), then each defense family's representatives. Spectre-model
/// defenses sit next to their futuristic/commit-time siblings so the
/// threat-model surcharge reads off each family directly.
pub fn hw_comparison_variants() -> Vec<Variant> {
    vec![
        Variant::Ooo,
        Variant::Permissive,
        Variant::Strict,
        Variant::FullProtection,
        Variant::InvisiSpecSpectre,
        Variant::InvisiSpecFuture,
        Variant::SttSpectre,
        Variant::SttFuturistic,
        Variant::ShadowBindingEager,
        Variant::ShadowBindingLazy,
    ]
}

/// Per-family geometric mean of the per-variant geomean-normalised CPIs
/// (ln-mean over the family members present in `r`).
pub fn family_geomean(r: &SweepResults, fam: &str) -> Option<f64> {
    let members: Vec<f64> = r
        .variants
        .iter()
        .enumerate()
        .filter(|(_, v)| family(**v) == fam)
        .map(|(i, _)| r.geomean_normalized(i))
        .filter(|g| g.is_finite() && *g > 0.0)
        .collect();
    if members.is_empty() {
        return None;
    }
    let ln_mean = members.iter().map(|g| g.ln()).sum::<f64>() / members.len() as f64;
    Some(ln_mean.exp())
}

/// Render the family-grouped comparison table (markdown pipes, matching
/// the other renderers): one row per variant with its geomean-normalised
/// CPI and overhead, a rule between families, and a per-family geomean.
pub fn hw_comparison_table(r: &SweepResults) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "| {:<14} | {:<20} | {:>12} | {:>9} |",
        "family", "variant", "geomean CPI", "overhead"
    );
    let _ = writeln!(out, "|{:-<16}|{:-<22}|{:->14}|{:->11}|", "", "", "", "");
    let mut last_family: Option<&str> = None;
    for (i, v) in r.variants.iter().enumerate() {
        let fam = family(*v);
        if last_family.is_some() && last_family != Some(fam) {
            let _ = writeln!(out, "|{:-<16}|{:-<22}|{:->14}|{:->11}|", "", "", "", "");
        }
        let shown = if last_family == Some(fam) { "" } else { fam };
        let _ = writeln!(
            out,
            "| {:<14} | {:<20} | {:>12.3} | {:>8.1}% |",
            shown,
            v.name(),
            r.geomean_normalized(i),
            r.overhead_pct(i)
        );
        last_family = Some(fam);
    }
    let mut fams: Vec<&str> = Vec::new();
    for v in &r.variants {
        let f = family(*v);
        if !fams.contains(&f) {
            fams.push(f);
        }
    }
    let _ = writeln!(out);
    let _ = writeln!(out, "family geomeans (normalised CPI):");
    for f in fams {
        if let Some(g) = family_geomean(r, f) {
            let _ = writeln!(out, "  {f:<16} {g:>8.3}  ({:+.1}%)", (g - 1.0) * 100.0);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_variant_has_a_family() {
        // The match in `family` is exhaustive by construction; pin the
        // grouping so new variants are placed deliberately.
        for v in Variant::all() {
            assert!(!family(v).is_empty());
        }
        assert_eq!(family(Variant::SttSpectre), "stt");
        assert_eq!(family(Variant::SttFuturistic), "stt");
        assert_eq!(family(Variant::ShadowBindingEager), "shadow-binding");
        assert_eq!(family(Variant::ShadowBindingLazy), "shadow-binding");
        assert_eq!(family(Variant::FullProtection), "nda");
        assert_eq!(family(Variant::DelayOnMiss), "delay-on-miss");
    }

    #[test]
    fn comparison_columns_start_at_base_ooo_and_cover_four_families() {
        let vs = hw_comparison_variants();
        assert_eq!(vs[0], Variant::Ooo, "normalisation base must lead");
        for fam in ["nda", "invisispec", "stt", "shadow-binding"] {
            assert!(
                vs.iter().any(|&v| family(v) == fam),
                "comparison must include the {fam} family"
            );
        }
    }
}
