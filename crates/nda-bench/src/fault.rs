//! Fault isolation for sweep jobs: the [`JobError`] taxonomy, bounded
//! retries with deterministic backoff, and the seeded [`Chaos`] injection
//! plan the chaos harness (`nda-verify`) drives.
//!
//! The contract of the fault-tolerant executor (`super::sweep`) is that a
//! failing (workload, variant, sample) cell — a panic, a simulator error,
//! a blown deadline — degrades *that cell* and nothing else: sibling jobs
//! keep running, the sweep terminates, and the failure is recorded in the
//! results (and the journal) instead of aborting the process.
//!
//! Everything here is host-side machinery: retries, backoff sleeps and
//! chaos decisions never touch simulated state, so an all-Ok sweep remains
//! bit-identical to one run without this layer (pinned by
//! `tests/determinism.rs`).

use nda_core::SimError;
use std::error::Error;
use std::fmt;

/// Why one sweep job (a single attempt at one cell) failed.
///
/// Non-exhaustive: the executor may grow new failure modes; callers must
/// keep a wildcard arm.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum JobError {
    /// The job's worker panicked; the panic was contained by
    /// `catch_unwind` and the payload (when it was a string) captured.
    Panicked {
        /// The panic payload, or a placeholder for non-string payloads.
        message: String,
    },
    /// The simulation itself failed (unhandled fault, invariant
    /// violation, PC out of range, ...).
    Sim(SimError),
    /// The job blew its per-job deadline: either the cycle budget ran out
    /// ([`SimError::CycleLimit`]) or the forward-progress watchdog fired
    /// ([`SimError::Stalled`]). The underlying error is kept as the
    /// [`source`](Error::source) so diagnostics (pipeline snapshots)
    /// survive.
    DeadlineExceeded {
        /// The configured per-job cycle deadline.
        limit: u64,
        /// The watchdog/cycle-budget error that tripped it.
        cause: SimError,
    },
    /// A host I/O operation attributable to this job failed (journal
    /// record unreadable, record write failed, ...).
    Io {
        /// What was being done (e.g. `"write journal record c0-1-0"`).
        context: String,
        /// The underlying I/O error text.
        message: String,
    },
}

impl JobError {
    /// Classify a [`SimError`] from a deadline-bounded run: budget
    /// exhaustion and watchdog stalls become [`JobError::DeadlineExceeded`]
    /// (the job was *slow or hung*), everything else stays a simulation
    /// error (the job was *wrong*).
    pub fn from_sim(e: SimError, limit: u64) -> JobError {
        match e {
            SimError::CycleLimit { .. } | SimError::Stalled { .. } => {
                JobError::DeadlineExceeded { limit, cause: e }
            }
            other => JobError::Sim(other),
        }
    }

    /// Short stable label for table cells and journal records:
    /// `panic`, `sim-error`, `deadline`, or `io`.
    pub fn kind_label(&self) -> &'static str {
        match self {
            JobError::Panicked { .. } => "panic",
            JobError::Sim(_) => "sim-error",
            JobError::DeadlineExceeded { .. } => "deadline",
            JobError::Io { .. } => "io",
        }
    }
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobError::Panicked { message } => write!(f, "job panicked: {message}"),
            JobError::Sim(e) => write!(f, "simulation failed: {e}"),
            JobError::DeadlineExceeded { limit, cause } => {
                write!(f, "job exceeded its {limit}-cycle deadline: {cause}")
            }
            JobError::Io { context, message } => write!(f, "i/o failure ({context}): {message}"),
        }
    }
}

impl Error for JobError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            JobError::Sim(e) => Some(e),
            JobError::DeadlineExceeded { cause, .. } => Some(cause),
            _ => None,
        }
    }
}

/// Install (once, process-wide) a panic hook that suppresses the default
/// "thread '...' panicked" banner for panics the sweep executor contains:
/// chaos-injected panics (payload prefixed `chaos:`) and panics raised on
/// named `nda-sweep-worker-*` threads. Containment records them as
/// [`JobError::Panicked`] with the full message, so the banner is pure
/// noise there. Panics anywhere else print as usual.
pub fn silence_contained_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let msg = info
                .payload()
                .downcast_ref::<&str>()
                .copied()
                .or_else(|| info.payload().downcast_ref::<String>().map(String::as_str));
            let contained = msg.is_some_and(|m| m.starts_with("chaos:"))
                || std::thread::current()
                    .name()
                    .is_some_and(|n| n.starts_with("nda-sweep-worker"));
            if !contained {
                prev(info);
            }
        }));
    });
}

/// Extract a human-readable message from a `catch_unwind` payload.
pub fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// SplitMix64: the deterministic host-side hash behind backoff jitter and
/// chaos decisions. No wall-clock, no global state.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Bounded-retry policy with deterministic, seeded backoff.
///
/// Backoff is exponential in the attempt number with seeded jitter; the
/// jitter is a pure function of `(seed, job, attempt)`, so two runs of the
/// same sweep sleep identically — no wall-clock randomness anywhere.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per job (first try + retries); at least 1.
    pub max_attempts: u32,
    /// Base backoff in milliseconds; `0` disables sleeping entirely
    /// (useful in tests).
    pub backoff_base_ms: u64,
    /// Jitter seed.
    pub seed: u64,
}

impl RetryPolicy {
    /// Milliseconds to sleep before retry number `attempt` (1-based — the
    /// first attempt never sleeps) of flat job index `job`.
    pub fn backoff_ms(&self, job: usize, attempt: u32) -> u64 {
        if self.backoff_base_ms == 0 || attempt == 0 {
            return 0;
        }
        // Exponential base, capped so a misconfigured retry count cannot
        // sleep for minutes, plus deterministic jitter in [0, base).
        let exp = self.backoff_base_ms << (attempt - 1).min(6);
        let jitter =
            splitmix64(self.seed ^ (job as u64).rotate_left(17) ^ u64::from(attempt) << 48)
                % self.backoff_base_ms;
        exp + jitter
    }
}

/// Deadline the chaos harness imposes on a job it decided to make "slow".
/// Below even a single cold DRAM fetch, so no real workload — however
/// tiny — can complete inside it: the attempt reliably degrades to
/// [`JobError::DeadlineExceeded`].
pub const CHAOS_SLOW_DEADLINE: u64 = 20;

/// What the chaos plan does to one job attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosAction {
    /// Leave the attempt alone.
    None,
    /// Panic inside the worker before the simulation starts.
    Panic,
    /// Run with an artificially tiny cycle deadline, so the attempt
    /// degrades to [`JobError::DeadlineExceeded`] — the simulated analogue
    /// of a wedged-slow host.
    Slow,
}

/// Seeded host-level fault-injection plan for sweep jobs.
///
/// Decisions are a pure function of `(seed, cell, attempt)`: the same plan
/// over the same sweep makes identical choices on every run, and a retry
/// of a probabilistically-failed attempt rolls fresh dice (so retries can
/// heal transient chaos, which is exactly what the retry budget is for).
/// The `target` cell, by contrast, fails on *every* attempt — a persistent
/// fault for acceptance tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Chaos {
    /// Decision seed.
    pub seed: u64,
    /// Percent of job attempts that panic (0-100).
    pub panic_pct: u8,
    /// Percent of job attempts that run artificially slow (0-100),
    /// evaluated after the panic roll.
    pub slow_pct: u8,
    /// A single (workload, variant, sample) cell that panics
    /// unconditionally, on every attempt. For sampled-mode checkpoint
    /// collection the variant index is [`Chaos::COLLECT_STAGE`].
    pub target: Option<(u16, u16, u16)>,
}

impl Chaos {
    /// Sentinel variant index identifying the sampled-mode checkpoint
    /// collection stage of a (workload, sample) set in [`Chaos::target`].
    pub const COLLECT_STAGE: u16 = u16::MAX;

    /// Decide what happens to `attempt` of the job for `cell`
    /// (workload index, variant index, sample index).
    pub fn decide(&self, cell: (usize, usize, usize), attempt: u32) -> ChaosAction {
        let (w, v, s) = cell;
        if self.target == Some((w as u16, v as u16, s as u16)) {
            return ChaosAction::Panic;
        }
        if self.panic_pct == 0 && self.slow_pct == 0 {
            return ChaosAction::None;
        }
        let h = splitmix64(
            self.seed ^ (w as u64) << 40 ^ (v as u64) << 20 ^ (s as u64) ^ u64::from(attempt) << 56,
        );
        let roll = (h % 100) as u8;
        if roll < self.panic_pct {
            ChaosAction::Panic
        } else if roll < self.panic_pct.saturating_add(self.slow_pct) {
            ChaosAction::Slow
        } else {
            ChaosAction::None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_sim_classifies_deadlines() {
        let e = JobError::from_sim(
            SimError::CycleLimit {
                cycles: 7,
                snapshot: None,
            },
            100,
        );
        assert!(matches!(e, JobError::DeadlineExceeded { limit: 100, .. }));
        assert_eq!(e.kind_label(), "deadline");
        let e = JobError::from_sim(SimError::PcOutOfRange { pc: 3 }, 100);
        assert!(matches!(e, JobError::Sim(_)));
        assert_eq!(e.kind_label(), "sim-error");
    }

    #[test]
    fn deadline_error_chains_to_sim_error() {
        let e = JobError::from_sim(
            SimError::CycleLimit {
                cycles: 7,
                snapshot: None,
            },
            100,
        );
        let src = e.source().expect("deadline chains its cause");
        assert!(src.to_string().contains("cycle budget"));
    }

    #[test]
    fn backoff_is_deterministic_and_bounded() {
        let p = RetryPolicy {
            max_attempts: 4,
            backoff_base_ms: 8,
            seed: 42,
        };
        assert_eq!(p.backoff_ms(3, 0), 0, "first attempt never sleeps");
        let a = p.backoff_ms(3, 1);
        assert_eq!(a, p.backoff_ms(3, 1), "same inputs, same backoff");
        assert!((8..16).contains(&a), "base + jitter in [base, 2*base): {a}");
        // Exponential growth, capped exponent.
        assert!(p.backoff_ms(3, 2) >= 16);
        assert!(p.backoff_ms(3, 40) < 8 << 7);
        // Zero base disables sleeping.
        let z = RetryPolicy {
            backoff_base_ms: 0,
            ..p
        };
        assert_eq!(z.backoff_ms(3, 2), 0);
    }

    #[test]
    fn chaos_decisions_are_deterministic_and_respect_rates() {
        let c = Chaos {
            seed: 7,
            panic_pct: 30,
            slow_pct: 20,
            target: None,
        };
        let mut panics = 0;
        let mut slows = 0;
        for w in 0..10 {
            for v in 0..11 {
                for s in 0..3 {
                    let d = c.decide((w, v, s), 0);
                    assert_eq!(d, c.decide((w, v, s), 0), "deterministic");
                    match d {
                        ChaosAction::Panic => panics += 1,
                        ChaosAction::Slow => slows += 1,
                        ChaosAction::None => {}
                    }
                }
            }
        }
        let total = 10 * 11 * 3;
        assert!(panics > total / 6 && panics < total / 2, "panics={panics}");
        assert!(slows > total / 20 && slows < total / 2, "slows={slows}");
    }

    #[test]
    fn chaos_target_panics_every_attempt_others_roll_per_attempt() {
        let c = Chaos {
            seed: 1,
            panic_pct: 50,
            slow_pct: 0,
            target: Some((2, 3, 0)),
        };
        for attempt in 0..5 {
            assert_eq!(c.decide((2, 3, 0), attempt), ChaosAction::Panic);
        }
        // Probabilistic cells re-roll per attempt: over many attempts some
        // must differ (50% rate makes all-equal astronomically unlikely).
        let rolls: Vec<ChaosAction> = (0..64).map(|a| c.decide((0, 0, 0), a)).collect();
        assert!(rolls.iter().any(|&r| r != rolls[0]));
    }

    #[test]
    fn zeroed_chaos_is_inert() {
        let c = Chaos::default();
        for w in 0..5 {
            assert_eq!(c.decide((w, 0, 0), 0), ChaosAction::None);
        }
    }

    #[test]
    fn panic_message_extracts_strings() {
        assert_eq!(panic_message(Box::new("boom")), "boom");
        assert_eq!(
            panic_message(Box::new(String::from("heap boom"))),
            "heap boom"
        );
        assert_eq!(panic_message(Box::new(17u32)), "<non-string panic payload>");
    }
}
