//! The ISSUE-level acceptance contract for fault isolation: a sweep with
//! one injected panic completes, reports exactly that cell as FAILED in
//! both the table and the metrics document, and every other cell is
//! bit-identical to an uninjected run.

use nda_bench::render::{metrics_document, sweep_table};
use nda_bench::{
    journal::fingerprint, silence_contained_panics, sweep, CellStatus, Chaos, SweepConfig,
};
use nda_core::Variant;

#[test]
fn injected_panic_degrades_one_cell_and_nothing_else() {
    silence_contained_panics();
    let workloads = &nda_workloads::all()[..2];
    let variants = [Variant::Ooo, Variant::StrictBr, Variant::InOrder];
    let base = SweepConfig {
        samples: 2,
        iters: 6,
        jobs: 2,
        backoff_ms: 0,
        ..SweepConfig::default()
    };
    let clean = sweep(workloads, &variants, base.clone());
    assert!(clean.all_ok());

    // Panic deterministically in cell (workload 1, variant 1, sample 0).
    let target = (1u16, 1u16, 0u16);
    let injected = sweep(
        workloads,
        &variants,
        SweepConfig {
            chaos: Some(Chaos {
                seed: 0,
                panic_pct: 0,
                slow_pct: 0,
                target: Some(target),
            }),
            ..base.clone()
        },
    );

    // Exactly the targeted cell is degraded...
    assert_eq!(
        injected.degraded(),
        vec![(1, 1, CellStatus::Failed)],
        "only the targeted cell may degrade"
    );
    // ...and every other cell is bit-identical to the clean sweep.
    for w in 0..workloads.len() {
        for v in 0..variants.len() {
            if (w, v) == (1, 1) {
                continue;
            }
            let a: Vec<_> = clean.cell(w, v).runs.iter().map(fingerprint).collect();
            let b: Vec<_> = injected.cell(w, v).runs.iter().map(fingerprint).collect();
            assert_eq!(a, b, "cell ({w},{v}) perturbed by the injected panic");
        }
    }

    // The table marks the failure explicitly, with a detail line.
    let table = sweep_table(&injected);
    assert_eq!(table.matches("FAILED").count(), 1, "{table}");
    let detail = format!(
        "# {}/{} failed:",
        injected.workloads[1],
        injected.variants[1].name()
    );
    assert!(table.contains(&detail), "{table}");
    assert!(table.contains("injected panic"), "{table}");
    assert!(!sweep_table(&clean).contains("FAILED"));

    // The metrics document carries the same status per variant object.
    let doc = metrics_document(&injected, base.samples, base.iters, base.seed, 0);
    assert_eq!(doc.matches("\"status\":\"failed\"").count(), 1, "{doc}");
    assert_eq!(
        doc.matches("\"status\":\"ok\"").count(),
        workloads.len() * variants.len() - 1
    );
    assert!(doc.contains("\"error\":"), "{doc}");
    let clean_doc = metrics_document(&clean, base.samples, base.iters, base.seed, 0);
    assert!(!clean_doc.contains("\"status\":\"failed\""));
}
