//! The parallel sweep executor must be a pure host-side optimisation:
//! `NDA_JOBS=N` produces bit-identical results to the serial loop for any
//! N. Each (workload, variant, sample) cell is an isolated, seeded
//! simulation, and aggregation walks pre-indexed slots in serial order —
//! this test pins that argument with an end-to-end comparison.

use nda_bench::sweep::{sweep, SweepConfig};
use nda_core::Variant;

/// Everything in a sweep result except `host_ns` (wall clock is the one
/// field that legitimately differs between runs).
fn assert_bit_identical(a: &nda_bench::sweep::SweepResults, b: &nda_bench::sweep::SweepResults) {
    assert_eq!(a.workloads, b.workloads);
    assert_eq!(a.variants, b.variants);
    for (w, (ra, rb)) in a.cells.iter().zip(&b.cells).enumerate() {
        for (v, (ca, cb)) in ra.iter().zip(rb).enumerate() {
            let tag = format!("{}/{}", a.workloads[w], a.variants[v]);
            assert_eq!(ca.cpi, cb.cpi, "{tag}: CPI sample diverged");
            assert_eq!(ca.runs.len(), cb.runs.len(), "{tag}: run count diverged");
            for (s, (x, y)) in ca.runs.iter().zip(&cb.runs).enumerate() {
                assert_eq!(x.stats, y.stats, "{tag}/sample{s}: SimStats diverged");
                assert_eq!(
                    x.mem_stats, y.mem_stats,
                    "{tag}/sample{s}: MemStats diverged"
                );
                assert_eq!(x.regs, y.regs, "{tag}/sample{s}: registers diverged");
                assert_eq!(x.halted, y.halted, "{tag}/sample{s}: halt state diverged");
            }
        }
    }
}

#[test]
fn parallel_sweep_is_bit_identical_to_serial() {
    let workloads = &nda_workloads::all()[..3];
    let variants = [
        Variant::Ooo,
        Variant::Strict,
        Variant::FullProtection,
        Variant::InvisiSpecSpectre,
    ];
    let base = SweepConfig {
        samples: 2,
        iters: 10,
        jobs: 1,
    };
    let serial = sweep(workloads, &variants, base);
    let parallel = sweep(workloads, &variants, SweepConfig { jobs: 4, ..base });
    assert_bit_identical(&serial, &parallel);
}
