//! The parallel sweep executor must be a pure host-side optimisation:
//! `NDA_JOBS=N` produces bit-identical results to the serial loop for any
//! N. Each (workload, variant, sample) cell is an isolated, seeded
//! simulation, and aggregation walks pre-indexed slots in serial order —
//! this test pins that argument with an end-to-end comparison.

use nda_bench::sweep::{sweep, SweepConfig, SweepMode};
use nda_core::{SampledParams, Variant};

/// Everything in a sweep result except `host_ns` (wall clock is the one
/// field that legitimately differs between runs).
fn assert_bit_identical(a: &nda_bench::sweep::SweepResults, b: &nda_bench::sweep::SweepResults) {
    assert_eq!(a.workloads, b.workloads);
    assert_eq!(a.variants, b.variants);
    for (w, (ra, rb)) in a.cells.iter().zip(&b.cells).enumerate() {
        for (v, (ca, cb)) in ra.iter().zip(rb).enumerate() {
            let tag = format!("{}/{}", a.workloads[w], a.variants[v]);
            assert_eq!(ca.cpi, cb.cpi, "{tag}: CPI sample diverged");
            assert_eq!(ca.runs.len(), cb.runs.len(), "{tag}: run count diverged");
            for (s, (x, y)) in ca.runs.iter().zip(&cb.runs).enumerate() {
                assert_eq!(x.stats, y.stats, "{tag}/sample{s}: SimStats diverged");
                assert_eq!(
                    x.mem_stats, y.mem_stats,
                    "{tag}/sample{s}: MemStats diverged"
                );
                assert_eq!(x.regs, y.regs, "{tag}/sample{s}: registers diverged");
                assert_eq!(x.halted, y.halted, "{tag}/sample{s}: halt state diverged");
            }
        }
    }
}

#[test]
fn parallel_sweep_is_bit_identical_to_serial() {
    let workloads = &nda_workloads::all()[..3];
    let variants = [
        Variant::Ooo,
        Variant::Strict,
        Variant::FullProtection,
        Variant::InvisiSpecSpectre,
        Variant::SttSpectre,
        Variant::ShadowBindingLazy,
    ];
    let base = SweepConfig {
        samples: 2,
        iters: 10,
        jobs: 1,
        mode: SweepMode::Full,
        ..SweepConfig::default()
    };
    let serial = sweep(workloads, &variants, base.clone());
    let parallel = sweep(workloads, &variants, SweepConfig { jobs: 4, ..base });
    assert_bit_identical(&serial, &parallel);
}

/// The same scheduling-independence argument holds in sampled mode, where
/// the unit of work is a (workload, sample) pair whose checkpoints all
/// variants share.
#[test]
fn parallel_sampled_sweep_is_bit_identical_to_serial() {
    let workloads = &nda_workloads::all()[..2];
    let variants = [
        Variant::Ooo,
        Variant::FullProtection,
        Variant::InOrder,
        Variant::SttFuturistic,
    ];
    let base = SweepConfig {
        samples: 2,
        iters: 400,
        jobs: 1,
        mode: SweepMode::Sampled(SampledParams::new(2_000, 200, 200)),
        ..SweepConfig::default()
    };
    let serial = sweep(workloads, &variants, base.clone());
    let parallel = sweep(workloads, &variants, SweepConfig { jobs: 4, ..base });
    assert_bit_identical(&serial, &parallel);
    // Sampled runs must actually be sampled (not the short-program
    // fallback) and carry window statistics.
    for row in &serial.cells {
        for cell in row {
            for r in &cell.runs {
                let info = r.sampled.expect("sampled info attached");
                assert!(info.windows >= 1);
                assert!(info.detailed_insts > 0);
                assert!(info.fast_forwarded_insts >= info.detailed_insts);
            }
        }
    }
}

/// The journal is a pure persistence layer: writing one during a sweep,
/// and resuming a completed one, both produce results bit-identical to a
/// journal-free sweep — at any job count.
#[test]
fn journaled_sweep_is_bit_identical_to_plain_sweep() {
    use nda_bench::{sweep_journaled, sweep_meta, Journal};
    let workloads = &nda_workloads::all()[..2];
    let variants = [Variant::Ooo, Variant::StrictBr, Variant::ShadowBindingEager];
    let base = SweepConfig {
        samples: 2,
        iters: 10,
        jobs: 1,
        mode: SweepMode::Full,
        ..SweepConfig::default()
    };
    let plain = sweep(workloads, &variants, base.clone());

    let dir = std::env::temp_dir().join("nda-bench-journal-determinism");
    let _ = std::fs::remove_dir_all(&dir);
    let meta = sweep_meta(workloads, &variants, &base);
    // Cold journal, parallel jobs: every cell runs and is recorded.
    let (j, state) = Journal::open(&dir, &meta).unwrap();
    let cold = sweep_journaled(
        workloads,
        &variants,
        SweepConfig {
            jobs: 4,
            ..base.clone()
        },
        Some((&j, &state)),
    );
    assert_bit_identical(&plain, &cold);
    // Warm journal: every cell restores from disk, nothing re-runs —
    // the deserialized results must still be bit-identical.
    let (j, state) = Journal::open(&dir, &meta).unwrap();
    assert_eq!(state.ok.len(), workloads.len() * variants.len() * 2);
    let warm = sweep_journaled(workloads, &variants, base, Some((&j, &state)));
    assert_bit_identical(&plain, &warm);
}
