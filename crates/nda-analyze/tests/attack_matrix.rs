//! Cross-validation of the static analyzer against the attack suite's
//! ground truth: every attack program must contain at least one gadget
//! (zero misses), the per-variant suppression verdicts must reproduce
//! the paper's Tables 1-2 exactly, and benign workloads must produce no
//! gadgets at all.

use nda_analyze::{analyze, AnalyzeConfig};
use nda_attacks::AttackKind;
use nda_core::Variant;
use nda_workloads::WorkloadParams;

#[test]
fn every_attack_program_contains_a_gadget() {
    for kind in AttackKind::all() {
        let p = kind.program(42);
        let report = analyze(&p, &kind.secret_spec(), &AnalyzeConfig::default());
        assert!(
            !report.gadgets.is_empty(),
            "{kind}: analyzer missed the gadget\n{}",
            report.render_human()
        );
    }
}

#[test]
fn suppression_verdicts_match_the_paper_matrix() {
    for kind in AttackKind::all() {
        let p = kind.program(42);
        let report = analyze(&p, &kind.secret_spec(), &AnalyzeConfig::default());
        for v in Variant::all() {
            let predicted_leak = report.leaks_under(v);
            let truth_leak = !kind.expected_blocked(v);
            assert_eq!(
                predicted_leak,
                truth_leak,
                "{kind} under {}: analyzer says leak={predicted_leak}, \
                 ground truth says leak={truth_leak}\n{}",
                v.name(),
                report.render_human()
            );
        }
    }
}

/// The full 9 attacks × 15 variants verdict matrix, pinned as a literal
/// table (`true` = blocked). `suppression_verdicts_match_the_paper_matrix`
/// checks the analyzer against `expected_blocked`; this test pins
/// `expected_blocked` *itself*, so a silent edit to the ground truth (or
/// a new variant slotted into the wrong row) is a hard diff here, not a
/// mutually-consistent drift.
///
/// Column order is `Variant::all()`:
/// Ooo, Permissive, PermissiveBr, Strict, StrictBr, RestrictedLoads,
/// FullProtection, InOrder, InvisiSpecSpectre, InvisiSpecFuture,
/// DelayOnMiss, SttSpectre, SttFuturistic, ShadowBindingEager,
/// ShadowBindingLazy.
#[test]
fn verdict_matrix_is_pinned_9_attacks_by_15_variants() {
    use AttackKind::*;
    #[rustfmt::skip]
    const MATRIX: [(AttackKind, [bool; 15]); 9] = [
        //                   Ooo    Perm   PermBr Strict StrBr  RLoads Full   InOrd  ISpecS ISpecF DoM    SttS   SttF   SBEag  SBLaz
        (SpectreV1Cache, [false, true,  true,  true,  true,  true,  true,  true,  true,  true,  true,  true,  true,  true,  true ]),
        (SpectreV1Btb,   [false, true,  true,  true,  true,  true,  true,  true,  false, false, false, true,  true,  true,  true ]),
        (Ssb,            [false, false, true,  false, true,  true,  true,  true,  false, true,  false, false, true,  false, false]),
        (Meltdown,       [false, false, false, false, false, true,  true,  true,  false, true,  false, false, true,  false, false]),
        (LazyFp,         [false, false, false, false, false, true,  true,  true,  false, true,  false, false, true,  false, false]),
        (SpectreV2Gpr,   [false, false, false, true,  true,  false, true,  true,  true,  true,  true,  false, false, false, false]),
        (Ret2spec,       [false, false, false, true,  true,  false, true,  true,  true,  true,  true,  false, false, false, false]),
        (NetspectreFpu,  [false, true,  true,  true,  true,  true,  true,  true,  false, false, false, false, false, false, false]),
        (Smother,        [false, true,  true,  true,  true,  true,  true,  true,  false, false, false, false, false, false, false]),
    ];
    assert_eq!(MATRIX.map(|(k, _)| k), AttackKind::all(), "row order");
    for (kind, row) in MATRIX {
        for (v, &blocked) in Variant::all().into_iter().zip(&row) {
            assert_eq!(
                kind.expected_blocked(v),
                blocked,
                "{kind} under {}: pinned verdict diverged",
                v.name()
            );
        }
    }
}

/// What the taint-tracking family deliberately does NOT block, spelled
/// out as sets rather than left implicit in the matrix:
///
/// * GPR-resident secrets (`SpectreV2Gpr`, `Ret2spec`) were loaded and
///   committed architecturally long before the transient gadget runs —
///   they are never tainted, so no taint variant can gate their
///   transmits;
/// * the contention channels (`NetspectreFpu`, `Smother`) steer through
///   a *conditional branch on tainted data*, and the explicit-channel
///   gate leaves branch conditions unchecked — STT's documented
///   implicit-channel gap.
///
/// Conversely every taint-reachable attack — a speculatively-loaded
/// secret reaching a load/store/BTB transmit — must be dead under the
/// matching threat model: zero false negatives.
#[test]
fn stt_gap_is_exactly_untainted_secrets_plus_implicit_channels() {
    use AttackKind::*;
    let taint_variants = [
        Variant::SttSpectre,
        Variant::SttFuturistic,
        Variant::ShadowBindingEager,
        Variant::ShadowBindingLazy,
    ];
    let gap = [SpectreV2Gpr, Ret2spec, NetspectreFpu, Smother];
    for kind in gap {
        for v in taint_variants {
            assert!(
                !kind.expected_blocked(v),
                "{kind} is outside the taint threat model, {} must not claim it",
                v.name()
            );
        }
    }
    // Taint-reachable under control speculation: every taint variant.
    for kind in [SpectreV1Cache, SpectreV1Btb] {
        for v in taint_variants {
            assert!(
                kind.expected_blocked(v),
                "{kind}: false negative on {}",
                v.name()
            );
        }
    }
    // Taint-reachable only under the futuristic threat model (fault,
    // MSR, and memory-order speculation sources).
    for kind in [Ssb, Meltdown, LazyFp] {
        assert!(kind.expected_blocked(Variant::SttFuturistic));
        for v in [
            Variant::SttSpectre,
            Variant::ShadowBindingEager,
            Variant::ShadowBindingLazy,
        ] {
            assert!(
                !kind.expected_blocked(v),
                "{kind} needs the futuristic threat model, not {}",
                v.name()
            );
        }
    }
}

#[test]
fn gadget_reports_carry_a_connected_taint_path() {
    for kind in AttackKind::all() {
        let p = kind.program(42);
        let report = analyze(&p, &kind.secret_spec(), &AnalyzeConfig::default());
        for g in &report.gadgets {
            assert!(
                g.chain.contains(&g.source_pc),
                "{kind}: chain misses source"
            );
            assert!(g.chain.contains(&g.sink_pc), "{kind}: chain misses sink");
            assert!(!g.triggers.is_empty(), "{kind}: gadget without trigger");
            for t in &g.triggers {
                assert!(t.distance > 0 && t.distance as usize <= report.window);
            }
        }
    }
}

#[test]
fn benign_workloads_report_no_gadgets() {
    // The SPEC-like kernels handle no secrets: with an empty labeling the
    // analyzer must stay silent on every one of them (no false positives).
    let params = WorkloadParams::test(7);
    for w in nda_workloads::all() {
        let p = (w.build)(&params);
        let report = analyze(&p, &nda_isa::SecretSpec::empty(), &AnalyzeConfig::default());
        assert!(
            report.gadgets.is_empty(),
            "workload {}: spurious gadget\n{}",
            w.name,
            report.render_human()
        );
    }
}
