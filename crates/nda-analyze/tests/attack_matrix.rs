//! Cross-validation of the static analyzer against the attack suite's
//! ground truth: every attack program must contain at least one gadget
//! (zero misses), the per-variant suppression verdicts must reproduce
//! the paper's Tables 1-2 exactly, and benign workloads must produce no
//! gadgets at all.

use nda_analyze::{analyze, AnalyzeConfig};
use nda_attacks::AttackKind;
use nda_core::Variant;
use nda_workloads::WorkloadParams;

#[test]
fn every_attack_program_contains_a_gadget() {
    for kind in AttackKind::all() {
        let p = kind.program(42);
        let report = analyze(&p, &kind.secret_spec(), &AnalyzeConfig::default());
        assert!(
            !report.gadgets.is_empty(),
            "{kind}: analyzer missed the gadget\n{}",
            report.render_human()
        );
    }
}

#[test]
fn suppression_verdicts_match_the_paper_matrix() {
    for kind in AttackKind::all() {
        let p = kind.program(42);
        let report = analyze(&p, &kind.secret_spec(), &AnalyzeConfig::default());
        for v in Variant::all() {
            let predicted_leak = report.leaks_under(v);
            let truth_leak = !kind.expected_blocked(v);
            assert_eq!(
                predicted_leak,
                truth_leak,
                "{kind} under {}: analyzer says leak={predicted_leak}, \
                 ground truth says leak={truth_leak}\n{}",
                v.name(),
                report.render_human()
            );
        }
    }
}

#[test]
fn gadget_reports_carry_a_connected_taint_path() {
    for kind in AttackKind::all() {
        let p = kind.program(42);
        let report = analyze(&p, &kind.secret_spec(), &AnalyzeConfig::default());
        for g in &report.gadgets {
            assert!(
                g.chain.contains(&g.source_pc),
                "{kind}: chain misses source"
            );
            assert!(g.chain.contains(&g.sink_pc), "{kind}: chain misses sink");
            assert!(!g.triggers.is_empty(), "{kind}: gadget without trigger");
            for t in &g.triggers {
                assert!(t.distance > 0 && t.distance as usize <= report.window);
            }
        }
    }
}

#[test]
fn benign_workloads_report_no_gadgets() {
    // The SPEC-like kernels handle no secrets: with an empty labeling the
    // analyzer must stay silent on every one of them (no false positives).
    let params = WorkloadParams::test(7);
    for w in nda_workloads::all() {
        let p = (w.build)(&params);
        let report = analyze(&p, &nda_isa::SecretSpec::empty(), &AnalyzeConfig::default());
        assert!(
            report.gadgets.is_empty(),
            "workload {}: spurious gadget\n{}",
            w.name,
            report.render_human()
        );
    }
}
