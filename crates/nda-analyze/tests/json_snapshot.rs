//! Pins the `--json` report schema for the Spectre v1 (cache) attack.
//!
//! The JSON report is the machine-readable contract of `nda-sim analyze
//! --json` (documented in DESIGN.md §11): external tooling keys on the
//! field names and shapes below, so schema drift must be a deliberate,
//! reviewed change — update this snapshot *and* the DESIGN.md schema
//! together.

use nda_analyze::{analyze, AnalyzeConfig};
use nda_attacks::AttackKind;

const SNAPSHOT: &str = r#"{
  "program_len": 56,
  "window": 192,
  "gadgets": [
    {
      "source": {"pc": 6, "inst": "ld1 x6, 0(x5)", "kind": "wild-load"},
      "sink": {"pc": 10, "inst": "ld1 x8, 0(x7)", "channel": "dcache-load"},
      "chain": [6, 7, 9, 10],
      "triggers": [{"pc": 3, "kind": "cond-branch", "distance": 7}],
      "patch": {"pc": 5, "trigger": "cond-branch", "pass": "mask"},
      "suppressed_by": ["Permissive", "Permissive+BR", "Strict", "Strict+BR", "Restricted Loads", "Full Protection", "In-Order", "InvisiSpec-Spectre", "InvisiSpec-Future", "Delay-On-Miss"]
    }
  ]
}"#;

#[test]
fn spectre_v1_json_report_matches_snapshot() {
    let kind = AttackKind::SpectreV1Cache;
    let p = kind.program(42);
    let report = analyze(&p, &kind.secret_spec(), &AnalyzeConfig::default());
    assert_eq!(
        report.to_json(),
        format!("{SNAPSHOT}\n"),
        "JSON report schema drifted; update the snapshot and DESIGN.md §11 together"
    );
}
