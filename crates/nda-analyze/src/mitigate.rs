//! Analysis-guided software mitigation synthesis.
//!
//! Takes the gadget report of [`analyze`](crate::analyze) and *repairs*
//! the program with per-gadget rewrite passes, iterating rewrite →
//! re-analysis until the report is clean or no enabled pass applies:
//!
//! * **Fence insertion** ([`Pass::Fence`]): a serializing `fence` ahead
//!   of the transmitting sink. Every path into the sink — fall-through or
//!   relocated transfer — now runs through the fence, so no speculation
//!   window can contain the sink (the window BFS cannot expand past a
//!   serializing instruction) and dynamically the sink can never issue
//!   while an older trigger is unresolved. This is the universal
//!   fallback: it applies to every gadget and provably converges.
//! * **Index masking** ([`Pass::Mask`]): for a wild-load source whose
//!   address is `constant base + attacker index`, clamp the index with an
//!   `and` so the access provably stays inside a power-of-two region
//!   disjoint from every labeled secret range (and from kernel space).
//!   The re-analysis then resolves the load's address interval and stops
//!   classifying it as a source at all — the gadget is removed at its
//!   root, like the `array_index_mask_nospec` idiom in Linux. Applied
//!   only to [`SourceKind::WildLoad`] sources: clamping a *definite* or
//!   *faulting* access would change architectural behavior.
//! * **Speculation thunking** ([`Pass::Thunk`]): for gadgets whose every
//!   trigger is an indirect transfer or return, bracket the transfer in
//!   the paper's §8 `stop_speculative_exec()` / `resume_speculative_exec()`
//!   window (`spec_off` immediately before the trigger, `spec_on` at its
//!   continuations). The transfer then resolves before anything younger
//!   dispatches — the BTB/RAS-steered wrong path never executes — and the
//!   analyzer's speculation-control dataflow
//!   ([`gadget::spec_disabled`](crate::gadget::spec_disabled)) proves the
//!   trigger dead.
//!
//! Each fix is chosen per gadget (mask at the source when it applies,
//! else thunk at the triggers, else fence at the sink); gadgets no
//! enabled pass can repair are returned as [`Residual`]s with the reason
//! per pass. The composed [`PcMap`] lets callers relate every original
//! instruction to its hardened position — `nda-verify` uses it to pin
//! architectural equivalence and to re-target the dynamic taint probe at
//! the relocated source/sink pair.

use nda_isa::inst::Src2;
use nda_isa::{
    apply_patches, AluOp, Cfg, Inst, Patch, PcMap, Program, Reg, SecretSpec, KERNEL_BASE,
};

use crate::absint::SourceKind;
use crate::gadget::TriggerKind;
use crate::report::{Gadget, Report};
use crate::{analyze, AnalyzeConfig};

/// One mitigation pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pass {
    /// Serializing fence ahead of the transmitting sink.
    Fence,
    /// Clamp a wild load's index into a secret-free power-of-two region.
    Mask,
    /// `spec_off`/`spec_on` bracket around an indirect-transfer trigger.
    Thunk,
}

impl Pass {
    /// Stable JSON/CLI identifier.
    pub fn name(self) -> &'static str {
        match self {
            Pass::Fence => "fence",
            Pass::Mask => "mask",
            Pass::Thunk => "thunk",
        }
    }
}

/// Which passes the synthesizer may use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PassSet {
    /// Allow fence insertion.
    pub fence: bool,
    /// Allow index masking.
    pub mask: bool,
    /// Allow speculation thunking.
    pub thunk: bool,
}

impl PassSet {
    /// Every pass enabled (the default).
    pub fn all() -> PassSet {
        PassSet {
            fence: true,
            mask: true,
            thunk: true,
        }
    }

    /// Parse a comma-separated pass list (`"fence,mask,thunk"`, any
    /// subset, or `"all"`).
    pub fn parse(s: &str) -> Result<PassSet, String> {
        let mut set = PassSet {
            fence: false,
            mask: false,
            thunk: false,
        };
        for part in s.split(',') {
            match part.trim() {
                "fence" => set.fence = true,
                "mask" => set.mask = true,
                "thunk" => set.thunk = true,
                "all" => set = PassSet::all(),
                "" => return Err("empty pass name".to_string()),
                other => {
                    return Err(format!(
                        "unknown pass '{other}' (expected fence, mask, thunk or all)"
                    ))
                }
            }
        }
        Ok(set)
    }

    /// Comma-separated names of the enabled passes.
    pub fn names(&self) -> String {
        let mut out = Vec::new();
        if self.fence {
            out.push("fence");
        }
        if self.mask {
            out.push("mask");
        }
        if self.thunk {
            out.push("thunk");
        }
        out.join(",")
    }
}

impl Default for PassSet {
    fn default() -> PassSet {
        PassSet::all()
    }
}

/// Patch-point metadata attached to a reported gadget: where the
/// synthesizer would repair it with every pass enabled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatchPoint {
    /// Instruction index the fix anchors to (the masked address
    /// computation, the first thunked trigger, or the fenced sink).
    pub pc: usize,
    /// Kind of the gadget's first trigger (what the fix defends against).
    pub trigger: TriggerKind,
    /// The selected pass.
    pub pass: Pass,
}

/// Relative ordering of instructions inserted at the same anchor:
/// `spec_on` (ending an enclosing thunk window) first, then `fence`,
/// then `spec_off` (so a co-located trigger still sees a definitely-off
/// in-state), then masking ALU ops (immediately before the computation
/// they feed).
const ORD_SPEC_ON: u8 = 0;
const ORD_FENCE: u8 = 1;
const ORD_SPEC_OFF: u8 = 2;
const ORD_MASK: u8 = 3;

/// One planned primitive edit, deduplicated across gadgets.
#[derive(Debug, Clone, PartialEq)]
enum Edit {
    Insert { at: usize, order: u8, inst: Inst },
    Replace { at: usize, inst: Inst },
}

/// Plan the masking fix for a wild-load source: find the in-block
/// `li base_const` + `add addr, base_const, idx` (either operand order,
/// or an immediate base) feeding the load, and clamp `idx` through the
/// load's own destination register as scratch.
fn mask_plan(
    p: &Program,
    spec: &SecretSpec,
    graph: &Cfg,
    source_pc: usize,
) -> Option<(usize, Vec<Edit>)> {
    let Inst::Load {
        rd: scratch,
        base,
        off,
        size,
    } = p.insts[source_pc]
    else {
        return None;
    };
    if scratch.is_zero() {
        return None;
    }
    let block = &graph.blocks()[graph.block_of(source_pc)];

    // Most recent in-block writer of the load's base register.
    let add_pc = (block.start..source_pc)
        .rev()
        .find(|&pc| p.insts[pc].dest() == Some(base))?;
    let Inst::Alu {
        op: AluOp::Add,
        rd: _,
        rs1,
        src2,
    } = p.insts[add_pc]
    else {
        return None;
    };

    // Most recent in-block definition of `r` before `add_pc`, if it is a
    // plain (non-code-pointer) `li`.
    let const_of = |r: Reg| -> Option<u64> {
        let def = (block.start..add_pc)
            .rev()
            .find(|&pc| p.insts[pc].dest() == Some(r))?;
        match p.insts[def] {
            Inst::Li { imm, .. } if !p.code_ptr_lis.contains(&def) => Some(imm),
            _ => None,
        }
    };

    // Which operand is the constant region base, which the wild index?
    let (lo, idx, replacement) = match src2 {
        Src2::Imm(k) => (
            k,
            rs1,
            Inst::Alu {
                op: AluOp::Add,
                rd: base,
                rs1: scratch,
                src2: Src2::Imm(k),
            },
        ),
        Src2::Reg(r2) => {
            if let Some(lo) = const_of(rs1) {
                if rs1 == scratch {
                    return None; // the retained constant operand would be clobbered
                }
                (
                    lo,
                    r2,
                    Inst::Alu {
                        op: AluOp::Add,
                        rd: base,
                        rs1,
                        src2: Src2::Reg(scratch),
                    },
                )
            } else if let Some(lo) = const_of(r2) {
                if r2 == scratch {
                    return None;
                }
                (
                    lo,
                    rs1,
                    Inst::Alu {
                        op: AluOp::Add,
                        rd: base,
                        rs1: scratch,
                        src2: Src2::Reg(r2),
                    },
                )
            } else {
                return None;
            }
        }
    };

    // The scratch register must be dead between the address computation
    // and the load that (re)defines it: nothing there may read its old
    // value or clobber the masked index.
    for pc in add_pc + 1..source_pc {
        let inst = p.insts[pc];
        if inst.srcs().any(|r| r == scratch) || inst.dest() == Some(scratch) {
            return None;
        }
    }

    // Largest power-of-two window at `lo + off` that stays below kernel
    // space and clear of every labeled range. The re-analysis then
    // resolves the clamped address to exactly this interval.
    let start = (lo as i128) + (off as i128);
    if start < 0 {
        return None;
    }
    let mask = (1..=63u32).rev().map(|k| (1u64 << k) - 1).find(|&m| {
        let span = m + size.bytes();
        (start + span as i128) <= KERNEL_BASE as i128 && !spec.overlaps(start as u64, span)
    })?;

    let edits = vec![
        Edit::Insert {
            at: add_pc,
            order: ORD_MASK,
            inst: Inst::Alu {
                op: AluOp::And,
                rd: scratch,
                rs1: idx,
                src2: Src2::Imm(mask),
            },
        },
        Edit::Replace {
            at: add_pc,
            inst: replacement,
        },
    ];
    Some((add_pc, edits))
}

/// Plan the thunking fix: every trigger must be an indirect transfer or
/// return; each gets `spec_off` immediately ahead (its only predecessor
/// after relocation) and `spec_on` at its architectural continuations.
fn thunk_plan(p: &Program, graph: &Cfg, g: &Gadget) -> Option<(usize, Vec<Edit>)> {
    if g.triggers.is_empty()
        || !g.triggers.iter().all(|t| {
            matches!(
                t.kind,
                TriggerKind::IndirectCall | TriggerKind::ReturnMispredict
            )
        })
    {
        return None;
    }
    let mut edits = Vec::new();
    let spec_on_at = |edits: &mut Vec<Edit>, at: usize| {
        if at < p.insts.len() {
            edits.push(Edit::Insert {
                at,
                order: ORD_SPEC_ON,
                inst: Inst::SpecOn,
            });
        }
    };
    for t in &g.triggers {
        edits.push(Edit::Insert {
            at: t.pc,
            order: ORD_SPEC_OFF,
            inst: Inst::SpecOff,
        });
        match p.insts[t.pc] {
            Inst::CallInd { .. } => spec_on_at(&mut edits, t.pc + 1),
            Inst::JmpInd { .. } => {
                for &tgt in graph.indirect_targets() {
                    spec_on_at(&mut edits, tgt);
                }
            }
            Inst::Ret => {
                for &site in graph.return_sites() {
                    spec_on_at(&mut edits, site);
                }
            }
            _ => return None,
        }
    }
    Some((g.triggers[0].pc, edits))
}

/// Select a pass for `g` and plan its edits, or explain why every
/// enabled pass is inapplicable.
fn plan(
    p: &Program,
    spec: &SecretSpec,
    graph: &Cfg,
    g: &Gadget,
    passes: &PassSet,
) -> Result<(PatchPoint, Vec<Edit>), String> {
    let trigger = g
        .triggers
        .first()
        .map(|t| t.kind)
        .unwrap_or(TriggerKind::CondBranch);
    let mut reasons = Vec::new();
    if passes.mask {
        if g.source_kind != SourceKind::WildLoad {
            reasons.push(format!(
                "mask: source is {} (clamping a definite or faulting access would change architectural behavior)",
                g.source_kind.name()
            ));
        } else if let Some((pc, edits)) = mask_plan(p, spec, graph, g.source_pc) {
            return Ok((
                PatchPoint {
                    pc,
                    trigger,
                    pass: Pass::Mask,
                },
                edits,
            ));
        } else {
            reasons.push(
                "mask: no in-block `li base` + `add` address computation feeds the wild load, \
                 or no secret-free power-of-two window exists"
                    .to_string(),
            );
        }
    } else {
        reasons.push("mask: disabled".to_string());
    }
    if passes.thunk {
        if let Some((pc, edits)) = thunk_plan(p, graph, g) {
            return Ok((
                PatchPoint {
                    pc,
                    trigger,
                    pass: Pass::Thunk,
                },
                edits,
            ));
        }
        reasons.push("thunk: not every trigger is an indirect transfer or return".to_string());
    } else {
        reasons.push("thunk: disabled".to_string());
    }
    if passes.fence {
        return Ok((
            PatchPoint {
                pc: g.sink_pc,
                trigger,
                pass: Pass::Fence,
            },
            vec![Edit::Insert {
                at: g.sink_pc,
                order: ORD_FENCE,
                inst: Inst::Fence,
            }],
        ));
    }
    reasons.push("fence: disabled".to_string());
    Err(reasons.join("; "))
}

/// The patch point the synthesizer would use for `g` with every pass
/// enabled — attached to gadget reports as machine-readable metadata.
pub fn suggest(p: &Program, spec: &SecretSpec, graph: &Cfg, g: &Gadget) -> Option<PatchPoint> {
    plan(p, spec, graph, g, &PassSet::all())
        .ok()
        .map(|(pp, _)| pp)
}

/// Knobs for [`harden`].
#[derive(Debug, Clone)]
pub struct HardenConfig {
    /// Which passes may be used.
    pub passes: PassSet,
    /// Maximum rewrite → re-analysis rounds. Each round repairs every
    /// reported gadget; multiple rounds are needed when fixing one layer
    /// reveals sources previously hidden behind the analyzer's 63-bit
    /// taint-id cap, or when a thunk leaves a secondary trigger to fence.
    pub max_rounds: usize,
    /// Analyzer configuration used for every (re-)analysis.
    pub analyze: AnalyzeConfig,
}

impl Default for HardenConfig {
    fn default() -> HardenConfig {
        HardenConfig {
            passes: PassSet::all(),
            max_rounds: 32,
            analyze: AnalyzeConfig::default(),
        }
    }
}

/// One applied fix, in *final hardened-program* coordinates.
#[derive(Debug, Clone)]
pub struct Fix {
    /// The pass used.
    pub pass: Pass,
    /// Final index of the instruction the fix anchors to.
    pub at: usize,
    /// Final index of the repaired gadget's source.
    pub source_pc: usize,
    /// Final index of the repaired gadget's sink.
    pub sink_pc: usize,
    /// Rewrite round (0-based) the fix was applied in.
    pub round: usize,
}

/// A gadget no enabled pass could repair, with the per-pass reasons.
#[derive(Debug, Clone)]
pub struct Residual {
    /// The surviving gadget (final-program coordinates).
    pub gadget: Gadget,
    /// Why each enabled pass was inapplicable.
    pub reason: String,
}

/// Result of [`harden`].
#[derive(Debug)]
pub struct HardenOutcome {
    /// The hardened program. When the input already analyzed clean this
    /// is an exact copy of the input — byte-identical under
    /// [`encode_program`](nda_isa::encode_program).
    pub program: Program,
    /// Composed relocation map from input to hardened coordinates.
    pub map: PcMap,
    /// Rewrite rounds performed.
    pub rounds: usize,
    /// Every applied fix (final coordinates).
    pub fixes: Vec<Fix>,
    /// Gadgets that could not be repaired with the enabled passes.
    pub residual: Vec<Residual>,
    /// The final re-analysis report of [`HardenOutcome::program`]. Empty
    /// `gadgets` is the static proof that hardening succeeded.
    pub report: Report,
}

impl HardenOutcome {
    /// `true` if the final report is gadget-free.
    pub fn clean(&self) -> bool {
        self.report.gadgets.is_empty()
    }
}

/// Repair every gadget `analyze` finds in `p` under `spec`, iterating
/// rewrite → re-analysis until the report is clean, no enabled pass
/// applies, or the round budget is exhausted.
///
/// A program that already analyzes clean is returned unchanged (same
/// instruction sequence, identity map, zero rounds).
pub fn harden(p: &Program, spec: &SecretSpec, cfg: &HardenConfig) -> HardenOutcome {
    let mut prog = p.clone();
    let mut map = PcMap::identity(p.insts.len());
    let mut fixes: Vec<Fix> = Vec::new();
    let mut rounds = 0;
    loop {
        let report = analyze(&prog, spec, &cfg.analyze);
        if report.gadgets.is_empty() {
            return HardenOutcome {
                program: prog,
                map,
                rounds,
                fixes,
                residual: Vec::new(),
                report,
            };
        }
        if rounds >= cfg.max_rounds {
            let residual = report
                .gadgets
                .iter()
                .map(|g| Residual {
                    gadget: g.clone(),
                    reason: format!("round budget ({}) exhausted", cfg.max_rounds),
                })
                .collect();
            return HardenOutcome {
                program: prog,
                map,
                rounds,
                fixes,
                residual,
                report,
            };
        }

        let graph = Cfg::build(&prog);
        let mut edits: Vec<Edit> = Vec::new();
        let mut planned: Vec<(PatchPoint, usize, usize)> = Vec::new();
        let mut residual: Vec<Residual> = Vec::new();
        for g in &report.gadgets {
            match plan(&prog, spec, &graph, g, &cfg.passes) {
                Ok((pp, es)) => {
                    for e in es {
                        // Dedup identical edits across gadgets; on a
                        // replace conflict keep the first plan (the loser
                        // is re-planned against the rewritten program
                        // next round).
                        let conflict = matches!(&e, Edit::Replace { at, .. } if edits.iter().any(
                            |x| matches!(x, Edit::Replace { at: a, .. } if a == at)));
                        if !conflict && !edits.contains(&e) {
                            edits.push(e);
                        }
                    }
                    planned.push((pp, g.source_pc, g.sink_pc));
                }
                Err(reason) => residual.push(Residual {
                    gadget: g.clone(),
                    reason,
                }),
            }
        }
        if edits.is_empty() {
            return HardenOutcome {
                program: prog,
                map,
                rounds,
                fixes,
                residual,
                report,
            };
        }

        // Deterministic patch order: anchor, then the fixed insert
        // ordering, preserving plan order among equals.
        let mut inserts = edits.clone();
        inserts.retain(|e| matches!(e, Edit::Insert { .. }));
        inserts.sort_by_key(|e| match e {
            Edit::Insert { at, order, .. } => (*at, *order),
            Edit::Replace { .. } => unreachable!(),
        });
        let mut patches: Vec<Patch> = inserts
            .iter()
            .map(|e| match e {
                Edit::Insert { at, inst, .. } => Patch::insert_before(*at, vec![*inst]),
                Edit::Replace { .. } => unreachable!(),
            })
            .collect();
        patches.extend(edits.iter().filter_map(|e| match e {
            Edit::Replace { at, inst } => Some(Patch::replace(*at, *inst)),
            Edit::Insert { .. } => None,
        }));

        let (new_prog, m) = apply_patches(&prog, &patches).expect(
            "mitigation edits anchor to analyzed pcs and insert position-independent instructions",
        );
        for f in &mut fixes {
            f.at = m.inst(f.at);
            f.source_pc = m.inst(f.source_pc);
            f.sink_pc = m.inst(f.sink_pc);
        }
        for (pp, src, sink) in planned {
            fixes.push(Fix {
                pass: pp.pass,
                at: m.inst(pp.pc),
                source_pc: m.inst(src),
                sink_pc: m.inst(sink),
                round: rounds,
            });
        }
        map = map.compose(&m);
        prog = new_prog;
        rounds += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nda_isa::{Asm, Interp};

    /// The classic bounds-check-bypass shape from the crate docs: base
    /// address built by a load (not an `li`+`add`), so masking cannot
    /// apply and fencing must.
    fn loaded_base_gadget() -> (Program, SecretSpec) {
        let mut a = Asm::new();
        let done = a.new_label();
        a.li(Reg::X7, 0x1000);
        a.ld8(Reg::X2, Reg::X7, 0);
        a.li(Reg::X3, 8);
        a.bge(Reg::X2, Reg::X3, done);
        a.ld1(Reg::X4, Reg::X2, 0x2000);
        a.shli(Reg::X5, Reg::X4, 9);
        a.ld1(Reg::X6, Reg::X5, 0);
        a.bind(done);
        a.halt();
        (
            a.assemble().unwrap(),
            SecretSpec::empty().with_range(0x2000, 64),
        )
    }

    /// Spectre-v1 victim shape: `li base` + `add` feeds the wild load, so
    /// the mask pass applies and kills the source itself.
    fn masked_base_gadget() -> (Program, SecretSpec) {
        let mut a = Asm::new();
        let done = a.new_label();
        a.li(Reg::X7, 0x1000);
        a.ld8(Reg::X2, Reg::X7, 0); // attacker index
        a.li(Reg::X3, 8);
        a.bge(Reg::X2, Reg::X3, done); // bounds check
        a.li(Reg::X5, 0x4000); // array base
        a.add(Reg::X5, Reg::X5, Reg::X2);
        a.ld1(Reg::X4, Reg::X5, 0); // wild load
        a.shli(Reg::X4, Reg::X4, 9);
        a.li(Reg::X6, 0x0020_0000);
        a.add(Reg::X6, Reg::X6, Reg::X4);
        a.ld1(Reg::X8, Reg::X6, 0); // transmit
        a.bind(done);
        a.halt();
        // Secret well above the array: the largest clean window below it
        // still covers the in-bounds indices.
        (
            a.assemble().unwrap(),
            SecretSpec::empty().with_range(0x8000, 64),
        )
    }

    #[test]
    fn fence_pass_converges_to_zero_gadgets() {
        let (p, spec) = loaded_base_gadget();
        let cfg = HardenConfig {
            passes: PassSet::parse("fence").unwrap(),
            ..HardenConfig::default()
        };
        let out = harden(&p, &spec, &cfg);
        assert!(out.clean(), "residual: {:?}", out.residual);
        assert_eq!(out.fixes.len(), 1);
        assert_eq!(out.fixes[0].pass, Pass::Fence);
        // The fence sits immediately ahead of the relocated sink.
        assert_eq!(out.program.insts[out.fixes[0].sink_pc - 1], Inst::Fence);
    }

    #[test]
    fn mask_pass_kills_the_source_not_the_sink() {
        let (p, spec) = masked_base_gadget();
        let cfg = HardenConfig {
            passes: PassSet::parse("mask").unwrap(),
            ..HardenConfig::default()
        };
        let out = harden(&p, &spec, &cfg);
        assert!(out.clean(), "residual: {:?}", out.residual);
        assert_eq!(out.fixes.len(), 1);
        assert_eq!(out.fixes[0].pass, Pass::Mask);
        assert_eq!(out.program.insts.len(), p.insts.len() + 1);
        // The clamp: and X4, X2, mask directly ahead of the replaced add.
        let and_pc = out.fixes[0].at - 1;
        let Inst::Alu {
            op: AluOp::And,
            rd: Reg::X4,
            rs1: Reg::X2,
            src2: Src2::Imm(mask),
        } = out.program.insts[and_pc]
        else {
            panic!("expected clamp, got {}", out.program.insts[and_pc]);
        };
        // Largest power-of-two window below the 0x8000 secret from 0x4000.
        assert_eq!(mask, 0x3fff);
        assert_eq!(
            out.program.insts[out.fixes[0].at],
            Inst::Alu {
                op: AluOp::Add,
                rd: Reg::X5,
                rs1: Reg::X5,
                src2: Src2::Reg(Reg::X4),
            }
        );
    }

    #[test]
    fn mask_is_architecturally_invisible_for_in_bounds_indices() {
        let (mut p, spec) = masked_base_gadget();
        // In-bounds index 5 at the attacker slot.
        p.data.push(nda_isa::DataInit {
            addr: 0x1000,
            bytes: 5u64.to_le_bytes().to_vec(),
        });
        let cfg = HardenConfig {
            passes: PassSet::parse("mask,fence").unwrap(),
            ..HardenConfig::default()
        };
        let out = harden(&p, &spec, &cfg);
        let mut a = Interp::new(&p);
        let mut b = Interp::new(&out.program);
        a.run(10_000).unwrap();
        b.run(10_000).unwrap();
        assert!(a.halted() && b.halted());
        assert_eq!(a.regs(), b.regs(), "in-bounds run must be untouched");
    }

    #[test]
    fn thunk_pass_suppresses_indirect_trigger() {
        // Secret architecturally live in a register across an indirect
        // call whose alternate target transmits it (the v2-gpr shape).
        let mut a = Asm::new();
        let main = a.new_label();
        let benign = a.new_label();
        let gadget = a.new_label();
        a.jmp(main);
        a.bind(benign);
        a.nop();
        a.ret();
        a.bind(gadget);
        a.shli(Reg::X8, Reg::X15, 9);
        a.li(Reg::X9, 0x0020_0000);
        a.add(Reg::X8, Reg::X9, Reg::X8);
        a.ld1(Reg::X10, Reg::X8, 0); // transmit
        a.ret();
        a.bind(main);
        a.li(Reg::X3, 0x1000);
        a.li_label(Reg::X2, benign);
        a.st8(Reg::X2, Reg::X3, 0);
        a.li_label(Reg::X2, gadget);
        a.st8(Reg::X2, Reg::X3, 8);
        a.li(Reg::X4, 0x3000);
        a.ld8(Reg::X15, Reg::X4, 0); // the (labeled) secret, architectural
        a.ld8(Reg::X5, Reg::X3, 0);
        a.call_ind(Reg::X5); // resolves to benign; BTB may steer to gadget
        a.li(Reg::X15, 0);
        a.halt();
        let mut p = a.assemble().unwrap();
        p.data.push(nda_isa::DataInit {
            addr: 0x3000,
            bytes: 42u64.to_le_bytes().to_vec(),
        });
        let spec = SecretSpec::empty().with_range(0x3000, 8);

        let base = analyze(&p, &spec, &AnalyzeConfig::default());
        assert!(!base.gadgets.is_empty());
        assert!(base
            .gadgets
            .iter()
            .all(|g| g.triggers.iter().all(|t| matches!(
                t.kind,
                TriggerKind::IndirectCall | TriggerKind::ReturnMispredict
            ))));

        let cfg = HardenConfig {
            passes: PassSet::parse("thunk").unwrap(),
            ..HardenConfig::default()
        };
        let out = harden(&p, &spec, &cfg);
        assert!(out.clean(), "residual: {:?}", out.residual);
        assert!(out.fixes.iter().all(|f| f.pass == Pass::Thunk));
        // The thunk brackets the transfer: spec_off directly ahead.
        assert!(out
            .fixes
            .iter()
            .any(|f| out.program.insts[f.at - 1] == Inst::SpecOff));
        // Architectural equivalence through the relocation.
        let mut x = Interp::new(&p);
        let mut y = Interp::new(&out.program);
        x.run(10_000).unwrap();
        y.run(10_000).unwrap();
        assert!(x.halted() && y.halted());
        assert_eq!(x.reg(Reg::X15), y.reg(Reg::X15));
        assert_eq!(x.reg(Reg::X10), y.reg(Reg::X10));
    }

    #[test]
    fn disabled_passes_leave_residual_with_reasons() {
        let (p, spec) = loaded_base_gadget();
        let cfg = HardenConfig {
            passes: PassSet::parse("mask").unwrap(),
            ..HardenConfig::default()
        };
        let out = harden(&p, &spec, &cfg);
        assert!(!out.clean());
        assert_eq!(out.rounds, 0);
        assert!(!out.residual.is_empty());
        assert!(out.residual[0].reason.contains("mask:"));
        assert!(out.residual[0].reason.contains("fence: disabled"));
        // The program is untouched when nothing applies.
        assert_eq!(out.program, p);
    }

    #[test]
    fn clean_program_is_returned_unchanged() {
        let mut a = Asm::new();
        a.li(Reg::X2, 20);
        a.li(Reg::X3, 22);
        a.add(Reg::X4, Reg::X2, Reg::X3);
        a.halt();
        let p = a.assemble().unwrap();
        let spec = SecretSpec::empty().with_range(0x9000, 8);
        let out = harden(&p, &spec, &HardenConfig::default());
        assert_eq!(out.rounds, 0);
        assert!(out.fixes.is_empty());
        assert!(out.map.is_identity());
        assert_eq!(out.program, p);
        assert_eq!(
            nda_isa::encode_program(&out.program),
            nda_isa::encode_program(&p),
            "no-op hardening must be byte-identical"
        );
    }

    #[test]
    fn pass_set_parsing() {
        assert_eq!(PassSet::parse("all").unwrap(), PassSet::all());
        let s = PassSet::parse("fence,thunk").unwrap();
        assert!(s.fence && s.thunk && !s.mask);
        assert_eq!(s.names(), "fence,thunk");
        assert!(PassSet::parse("fenc").is_err());
        assert!(PassSet::parse("").is_err());
    }
}
