//! Gadget reports: the analyzer's output in human-readable and JSON form.
//!
//! The JSON schema is stable for downstream tooling and documented in
//! DESIGN.md §11.4; `tests/json_snapshot.rs` pins it.

use nda_core::Variant;
use nda_isa::Program;

use crate::absint::{Channel, SourceKind};
use crate::gadget::TriggerInfo;
use crate::mitigate::PatchPoint;

/// One access→transmit gadget.
#[derive(Debug, Clone)]
pub struct Gadget {
    /// Instruction index of the secret access.
    pub source_pc: usize,
    /// How the source reaches secret data.
    pub source_kind: SourceKind,
    /// Disassembly of the source.
    pub source_disasm: String,
    /// Instruction index of the transmitter.
    pub sink_pc: usize,
    /// Side channel of the transmitter.
    pub channel: Channel,
    /// Disassembly of the transmitter.
    pub sink_disasm: String,
    /// Instruction indices on the def-use path from source to sink
    /// (inclusive, sorted).
    pub chain: Vec<usize>,
    /// Triggers under which the chain executes transiently.
    pub triggers: Vec<TriggerInfo>,
    /// Where the mitigation synthesizer would repair this gadget with
    /// every pass enabled (`None` if no pass applies).
    pub patch: Option<PatchPoint>,
    /// Variants that kill every trigger of this gadget.
    pub suppressed_by: Vec<Variant>,
}

/// Full analysis result for one program.
#[derive(Debug, Clone)]
pub struct Report {
    /// Number of instructions analyzed.
    pub program_len: usize,
    /// Transient-window bound used (instructions, = ROB size by default).
    pub window: usize,
    /// Every gadget found, ordered by (source, sink).
    pub gadgets: Vec<Gadget>,
}

impl Report {
    /// `true` if at least one gadget survives under `variant` — the
    /// static analogue of "the attack leaks on this configuration".
    pub fn leaks_under(&self, variant: Variant) -> bool {
        self.gadgets
            .iter()
            .any(|g| !g.suppressed_by.contains(&variant))
    }

    /// Render the human-readable report.
    pub fn render_human(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{} instruction(s), window {}: {} gadget(s)",
            self.program_len,
            self.window,
            self.gadgets.len()
        );
        for (i, g) in self.gadgets.iter().enumerate() {
            let _ = writeln!(out, "\ngadget #{i}: {} leak", g.channel.name());
            let _ = writeln!(
                out,
                "  source  @{:<4} {}  [{}]",
                g.source_pc,
                g.source_disasm,
                g.source_kind.name()
            );
            let _ = writeln!(out, "  transmit@{:<4} {}", g.sink_pc, g.sink_disasm);
            let chain = g
                .chain
                .iter()
                .map(|pc| pc.to_string())
                .collect::<Vec<_>>()
                .join(" -> ");
            let _ = writeln!(out, "  taint path: {chain}");
            for t in &g.triggers {
                let _ = writeln!(
                    out,
                    "  trigger @{:<4} {} (transmit {} uop(s) into the window)",
                    t.pc,
                    t.kind.name(),
                    t.distance
                );
            }
            if let Some(pp) = &g.patch {
                let _ = writeln!(
                    out,
                    "  suggested fix: {} @{} (against {})",
                    pp.pass.name(),
                    pp.pc,
                    pp.trigger.name()
                );
            }
            let names = g
                .suppressed_by
                .iter()
                .map(|v| v.name())
                .collect::<Vec<_>>()
                .join(", ");
            let _ = writeln!(
                out,
                "  suppressed by: {}",
                if names.is_empty() { "none" } else { &names }
            );
        }
        out
    }

    /// Render the JSON report (schema in DESIGN.md §11.4).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"program_len\": {},\n", self.program_len));
        out.push_str(&format!("  \"window\": {},\n", self.window));
        out.push_str("  \"gadgets\": [");
        for (i, g) in self.gadgets.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\n");
            out.push_str(&format!(
                "      \"source\": {{\"pc\": {}, \"inst\": {}, \"kind\": \"{}\"}},\n",
                g.source_pc,
                json_str(&g.source_disasm),
                g.source_kind.name()
            ));
            out.push_str(&format!(
                "      \"sink\": {{\"pc\": {}, \"inst\": {}, \"channel\": \"{}\"}},\n",
                g.sink_pc,
                json_str(&g.sink_disasm),
                g.channel.name()
            ));
            let chain = g
                .chain
                .iter()
                .map(|pc| pc.to_string())
                .collect::<Vec<_>>()
                .join(", ");
            out.push_str(&format!("      \"chain\": [{chain}],\n"));
            out.push_str("      \"triggers\": [");
            for (j, t) in g.triggers.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!(
                    "{{\"pc\": {}, \"kind\": \"{}\", \"distance\": {}}}",
                    t.pc,
                    t.kind.name(),
                    t.distance
                ));
            }
            out.push_str("],\n");
            match &g.patch {
                Some(pp) => out.push_str(&format!(
                    "      \"patch\": {{\"pc\": {}, \"trigger\": \"{}\", \"pass\": \"{}\"}},\n",
                    pp.pc,
                    pp.trigger.name(),
                    pp.pass.name()
                )),
                None => out.push_str("      \"patch\": null,\n"),
            }
            let sup = g
                .suppressed_by
                .iter()
                .map(|v| format!("\"{}\"", v.name()))
                .collect::<Vec<_>>()
                .join(", ");
            out.push_str(&format!("      \"suppressed_by\": [{sup}]\n"));
            out.push_str("    }");
        }
        if !self.gadgets.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

/// Minimal JSON string escaping (disassembly contains no exotic bytes,
/// but escape defensively).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Disassemble one instruction for reports.
pub fn disasm(p: &Program, pc: usize) -> String {
    match p.fetch(pc) {
        Some(i) => i.to_string(),
        None => format!("<pc {pc} out of range>"),
    }
}
