//! `nda-analyze` — static speculative-leakage analyzer for SpecRISC.
//!
//! Finds Spectre/Meltdown-style *gadgets* in assembled [`Program`]s
//! without running them: an access→transmit chain where
//!
//! 1. a **source** instruction can read secret data (per a
//!    [`SecretSpec`]: labeled address ranges, labeled MSRs, or any
//!    privileged state),
//! 2. the value **propagates** through registers/memory to
//! 3. a **transmitter** that encodes it into a microarchitectural
//!    channel (d-cache fill via tainted load/store address, BTB via
//!    tainted indirect target, branch direction), and
//! 4. the whole chain fits inside a bounded **transient window** opened
//!    by a trigger (mispredictable branch/call/return, bypassable store,
//!    or architectural fault).
//!
//! For each gadget the analyzer also answers, per NDA policy variant,
//! whether the variant *suppresses* it — the same question
//! `nda-verify`'s differential mode answers dynamically on the
//! simulator.
//!
//! ```
//! use nda_isa::{Asm, Reg, SecretSpec};
//!
//! // A classic bounds-check-bypass gadget.
//! let mut a = Asm::new();
//! let done = a.new_label();
//! a.li(Reg::X7, 0x1000);
//! a.ld8(Reg::X2, Reg::X7, 0); // attacker-controlled index
//! a.li(Reg::X3, 8); // bound
//! a.bge(Reg::X2, Reg::X3, done); // mispredictable check
//! a.ld1(Reg::X4, Reg::X2, 0x2000); // out-of-bounds read can hit the secret
//! a.shli(Reg::X5, Reg::X4, 9);
//! a.ld1(Reg::X6, Reg::X5, 0); // cache transmitter
//! a.bind(done);
//! a.halt();
//! let p = a.assemble().unwrap();
//!
//! let spec = SecretSpec::empty().with_range(0x2000, 64);
//! let report = nda_analyze::analyze(&p, &spec, &nda_analyze::AnalyzeConfig::default());
//! assert_eq!(report.gadgets.len(), 1);
//! assert!(report.leaks_under(nda_core::Variant::Ooo));
//! assert!(!report.leaks_under(nda_core::Variant::Strict));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use nda_core::Variant;
use nda_isa::{Cfg, Program, SecretSpec};

pub mod absint;
pub mod gadget;
pub mod mitigate;
pub mod report;

pub use absint::{Analysis, Channel, SinkInfo, SourceInfo, SourceKind};
pub use gadget::{Trigger, TriggerInfo, TriggerKind};
pub use mitigate::{harden, Fix, HardenConfig, HardenOutcome, Pass, PassSet, PatchPoint, Residual};
pub use report::{Gadget, Report};

/// Analyzer knobs.
#[derive(Debug, Clone)]
pub struct AnalyzeConfig {
    /// Transient-window bound in instructions. Defaults to the ROB size of
    /// the simulated core (192): a transmitter further than a full ROB
    /// behind the trigger can never be in flight while it is unresolved.
    pub window: usize,
    /// Model store-to-load bypass (Spectre v4) triggers.
    pub track_ssb: bool,
}

impl Default for AnalyzeConfig {
    fn default() -> Self {
        AnalyzeConfig {
            window: nda_core::CoreConfig::default().rob_entries,
            track_ssb: true,
        }
    }
}

/// Pcs on the def-use path `source_pc → … → sink_pc`, if one exists:
/// the intersection of the backward taint closure from the sink and the
/// forward closure from the source.
fn chain_between(
    analysis: &Analysis,
    fwd: &BTreeMap<u32, Vec<u32>>,
    source_pc: usize,
    sink_pc: usize,
    operand_defs: &[u32],
) -> Option<Vec<usize>> {
    // Backward closure from the sink.
    let mut back: BTreeSet<u32> = BTreeSet::new();
    let mut queue: VecDeque<u32> = VecDeque::new();
    back.insert(sink_pc as u32);
    for &d in operand_defs {
        if back.insert(d) {
            queue.push_back(d);
        }
    }
    while let Some(pc) = queue.pop_front() {
        if let Some(defs) = analysis.taint_from.get(&pc) {
            for &d in defs {
                if back.insert(d) {
                    queue.push_back(d);
                }
            }
        }
    }
    if !back.contains(&(source_pc as u32)) {
        return None;
    }
    // Forward closure from the source.
    let mut fore: BTreeSet<u32> = BTreeSet::new();
    fore.insert(source_pc as u32);
    queue.push_back(source_pc as u32);
    while let Some(pc) = queue.pop_front() {
        if let Some(users) = fwd.get(&pc) {
            for &u in users {
                if fore.insert(u) {
                    queue.push_back(u);
                }
            }
        }
    }
    let mut chain: Vec<usize> = back.intersection(&fore).map(|&pc| pc as usize).collect();
    chain.sort_unstable();
    Some(chain)
}

/// Analyze `p` against `spec` and report every gadget with its triggers
/// and the set of variants that suppress it.
pub fn analyze(p: &Program, spec: &SecretSpec, cfg: &AnalyzeConfig) -> Report {
    let graph = Cfg::build(p);
    let analysis = absint::run(p, spec, &graph);
    let triggers = gadget::find_triggers(p, &graph, &analysis, cfg.window, cfg.track_ssb);

    // Invert the def-use links once for forward closures.
    let mut fwd: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
    for (&user, defs) in &analysis.taint_from {
        for &d in defs {
            fwd.entry(d).or_default().push(user);
        }
    }

    let mut gadgets = Vec::new();
    for (sink_pc, fact) in analysis.facts.iter().enumerate() {
        let Some(sink) = &fact.sink else { continue };
        for (id, src) in analysis.sources.iter().enumerate() {
            let bit = 1u64 << (id as u64).min(63);
            if sink.taint & bit == 0 {
                continue;
            }
            let Some(chain) = chain_between(&analysis, &fwd, src.pc, sink_pc, &sink.operand_defs)
            else {
                continue;
            };
            let trigs = gadget::triggers_for(&triggers, src, sink_pc);
            if trigs.is_empty() {
                continue;
            }
            let chain_no_sink: Vec<usize> =
                chain.iter().copied().filter(|&pc| pc != sink_pc).collect();
            let suppressed_by: Vec<Variant> = Variant::all()
                .iter()
                .copied()
                .filter(|&v| {
                    gadget::suppressed_by(p, v, sink.channel, &chain_no_sink, &trigs, &triggers)
                })
                .collect();
            let mut gadget = Gadget {
                source_pc: src.pc,
                source_kind: src.kind,
                source_disasm: report::disasm(p, src.pc),
                sink_pc,
                channel: sink.channel,
                sink_disasm: report::disasm(p, sink_pc),
                chain,
                triggers: trigs.into_iter().map(|(_, t)| t).collect(),
                patch: None,
                suppressed_by,
            };
            gadget.patch = mitigate::suggest(p, spec, &graph, &gadget);
            gadgets.push(gadget);
        }
    }

    Report {
        program_len: p.insts.len(),
        window: cfg.window,
        gadgets,
    }
}
