//! The abstract dataflow/taint engine.
//!
//! One forward fixpoint over the [`Cfg`] computes, per instruction, an
//! abstract register file combining three lattices:
//!
//! * **Values** ([`AbsVal`]): constants and small intervals, enough to
//!   resolve the address of every statically-addressed load/store in the
//!   attack suite (including `sltu`-selected two-entry tables). Joins of
//!   unequal values take the interval hull while it stays narrow and go
//!   to `Top` beyond [`JOIN_HULL_CAP`]; intervals otherwise come only
//!   from operators with intrinsically bounded results (`slt`/`sltu`,
//!   masking `and`, and arithmetic on existing intervals), which keeps
//!   the chain height finite without widening.
//! * **Taint**: a bitmask over discovered secret sources (loads/MSR reads
//!   matching the [`SecretSpec`]), propagated through ALU ops, loads with
//!   tainted addresses, and store→load memory summaries.
//! * **Provenance**: the defining pcs of each register, recorded into a
//!   global def-use link map so a reported gadget can print its taint
//!   path, plus a *load-derived* bit on addresses (the SSB trigger
//!   heuristic: only stores whose address comes from a load are treated
//!   as bypassable, since constant/counter addresses resolve too fast to
//!   be overtaken by a younger load).

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};

use nda_isa::inst::Src2;
use nda_isa::{Cfg, Inst, Program, SecretSpec, KERNEL_BASE};

/// Cap on recorded defining pcs per register (beyond this the taint path
/// display degrades, nothing else).
const DEFS_CAP: usize = 8;

/// Widest interval a *join* may produce before going to `Top`. Operators
/// may still produce wider ranges (e.g. a shifted index); the cap only
/// bounds how often a join can widen a value, which is what guarantees
/// fixpoint termination.
const JOIN_HULL_CAP: u64 = 64;

/// Abstract value of a register.
///
/// `Top` is split by *provenance*: a top produced by an operator on
/// program data ([`AbsVal::TopData`]) is genuinely data-dependent — an
/// address built from it can take attacker-influenced values, so a load
/// through it may alias secret state. A top produced only by *joining*
/// control-flow paths ([`AbsVal::TopMerge`]) is a merge artifact: on any
/// single path the value is one of finitely many resolved constants
/// (e.g. a software stack pointer flowing through context-insensitive
/// return edges), none of which reached a labeled range on its own.
/// Treating merge-tops as non-sources removes that whole class of false
/// positives; the (documented) cost is missing a gadget whose secret
/// aliasing exists only on one arm of a merge the hull join could not
/// absorb.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbsVal {
    /// Unknown, data-dependent (operator-produced).
    TopData,
    /// Unknown, but only because control-flow joins smeared resolved
    /// values (join-produced).
    TopMerge,
    /// All values in the inclusive interval `[lo, hi]`; a constant `c` is
    /// `Range(c, c)`.
    Range(u64, u64),
}

impl AbsVal {
    fn constant(c: u64) -> AbsVal {
        AbsVal::Range(c, c)
    }

    fn as_const(self) -> Option<u64> {
        match self {
            AbsVal::Range(l, h) if l == h => Some(l),
            _ => None,
        }
    }

    /// The top an operator must produce given its operands: data-tops are
    /// contagious; otherwise a merge-top stays a merge artifact (address
    /// arithmetic on a merged pointer does not make it data-dependent);
    /// pure-range operator failure (overflow, unbounded op) is genuine
    /// data dependence.
    fn op_top(a: AbsVal, b: AbsVal) -> AbsVal {
        if a == AbsVal::TopData || b == AbsVal::TopData {
            AbsVal::TopData
        } else if a == AbsVal::TopMerge || b == AbsVal::TopMerge {
            AbsVal::TopMerge
        } else {
            AbsVal::TopData
        }
    }

    /// Joins take the interval hull while it stays narrow (≤
    /// [`JOIN_HULL_CAP`] wide) and go to `TopMerge` beyond that. The cap
    /// keeps the lattice chain finite without widening — a value at a
    /// program point can only widen [`JOIN_HULL_CAP`] times before
    /// reaching top — while still absorbing the common
    /// `const ∨ small-range` joins (e.g. a first-iteration constant
    /// meeting a `sltu`-produced 0/1) that a flat join would needlessly
    /// smear to top.
    fn join(self, other: AbsVal) -> AbsVal {
        if self == other {
            return self;
        }
        match (self, other) {
            (AbsVal::TopData, _) | (_, AbsVal::TopData) => AbsVal::TopData,
            (AbsVal::Range(al, ah), AbsVal::Range(bl, bh)) => {
                let l = al.min(bl);
                let h = ah.max(bh);
                if h - l <= JOIN_HULL_CAP {
                    AbsVal::Range(l, h)
                } else {
                    AbsVal::TopMerge
                }
            }
            _ => AbsVal::TopMerge,
        }
    }

    /// Offset by a signed displacement (address generation).
    fn offset(self, off: i64) -> AbsVal {
        match self {
            AbsVal::Range(l, h) => {
                let lo = (l as i128) + (off as i128);
                let hi = (h as i128) + (off as i128);
                if lo >= 0 && hi <= u64::MAX as i128 {
                    AbsVal::Range(lo as u64, hi as u64)
                } else {
                    AbsVal::TopData
                }
            }
            top => top,
        }
    }

    fn apply(op: nda_isa::AluOp, a: AbsVal, b: AbsVal) -> AbsVal {
        use nda_isa::AluOp;
        if let (Some(x), Some(y)) = (a.as_const(), b.as_const()) {
            return AbsVal::constant(op.apply(x, y));
        }
        match op {
            AluOp::Slt | AluOp::Sltu => AbsVal::Range(0, 1),
            AluOp::And => match (a.as_const(), b.as_const()) {
                (_, Some(m)) | (Some(m), _) => AbsVal::Range(0, m),
                _ => AbsVal::op_top(a, b),
            },
            AluOp::Add => match (a, b) {
                (AbsVal::Range(al, ah), AbsVal::Range(bl, bh)) => {
                    match (al.checked_add(bl), ah.checked_add(bh)) {
                        (Some(l), Some(h)) => AbsVal::Range(l, h),
                        _ => AbsVal::TopData,
                    }
                }
                _ => AbsVal::op_top(a, b),
            },
            AluOp::Sub => match (a, b) {
                (AbsVal::Range(al, ah), AbsVal::Range(bl, bh)) if al >= bh => {
                    AbsVal::Range(al - bh, ah - bl)
                }
                _ => AbsVal::op_top(a, b),
            },
            AluOp::Shl => match (a, b.as_const()) {
                (AbsVal::Range(al, ah), Some(k)) => {
                    let k = (k & 63) as u32;
                    if ah.leading_zeros() >= k {
                        AbsVal::Range(al << k, ah << k)
                    } else {
                        AbsVal::TopData
                    }
                }
                _ => AbsVal::op_top(a, b),
            },
            AluOp::Shr => match (a, b.as_const()) {
                (AbsVal::Range(al, ah), Some(k)) => {
                    let k = (k & 63) as u32;
                    AbsVal::Range(al >> k, ah >> k)
                }
                _ => AbsVal::op_top(a, b),
            },
            _ => AbsVal::op_top(a, b),
        }
    }
}

/// Abstract state of one architectural register.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegAbs {
    /// Value approximation.
    pub val: AbsVal,
    /// Taint bitmask over source ids.
    pub taint: u64,
    /// `true` if the value flowed (through any chain of ALU ops) out of a
    /// load or MSR read.
    pub load_derived: bool,
    /// Defining pcs (for taint-path reconstruction).
    pub defs: Vec<u32>,
}

impl RegAbs {
    fn zero() -> RegAbs {
        RegAbs {
            val: AbsVal::constant(0),
            taint: 0,
            load_derived: false,
            defs: Vec::new(),
        }
    }

    fn def(pc: usize, val: AbsVal, taint: u64, load_derived: bool) -> RegAbs {
        RegAbs {
            val,
            taint,
            load_derived,
            defs: vec![pc as u32],
        }
    }

    fn join_from(&mut self, other: &RegAbs) -> bool {
        let mut changed = false;
        let v = self.val.join(other.val);
        if v != self.val {
            self.val = v;
            changed = true;
        }
        if self.taint | other.taint != self.taint {
            self.taint |= other.taint;
            changed = true;
        }
        if other.load_derived && !self.load_derived {
            self.load_derived = true;
            changed = true;
        }
        for &d in &other.defs {
            if !self.defs.contains(&d) && self.defs.len() < DEFS_CAP {
                self.defs.push(d);
                changed = true;
            }
        }
        changed
    }
}

/// Abstract register file at one program point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct State {
    regs: Vec<RegAbs>,
}

impl State {
    fn entry() -> State {
        State {
            regs: vec![RegAbs::zero(); nda_isa::reg::NUM_REGS],
        }
    }

    fn get(&self, r: nda_isa::Reg) -> RegAbs {
        if r.is_zero() {
            RegAbs::zero()
        } else {
            self.regs[r.index()].clone()
        }
    }

    fn set(&mut self, r: nda_isa::Reg, v: RegAbs) {
        if !r.is_zero() {
            self.regs[r.index()] = v;
        }
    }

    fn join_from(&mut self, other: &State) -> bool {
        let mut changed = false;
        for (a, b) in self.regs.iter_mut().zip(&other.regs) {
            changed |= a.join_from(b);
        }
        changed
    }
}

/// How a source instruction reaches secret data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SourceKind {
    /// Load with a statically unresolved address that may alias a labeled
    /// range (the classic out-of-bounds Spectre access).
    WildLoad,
    /// Load whose resolved address overlaps a labeled range.
    LabeledLoad,
    /// Load from privileged (kernel) memory — faults architecturally.
    PrivilegedLoad,
    /// MSR read of a labeled or privileged register.
    SecretMsr,
}

impl SourceKind {
    /// Stable JSON identifier.
    pub fn name(self) -> &'static str {
        match self {
            SourceKind::WildLoad => "wild-load",
            SourceKind::LabeledLoad => "labeled-load",
            SourceKind::PrivilegedLoad => "privileged-load",
            SourceKind::SecretMsr => "secret-msr",
        }
    }
}

/// One discovered secret source.
#[derive(Debug, Clone)]
pub struct SourceInfo {
    /// Instruction index of the source.
    pub pc: usize,
    /// Classification.
    pub kind: SourceKind,
    /// `true` if the access faults architecturally (Meltdown/LazyFP): the
    /// fault itself opens a transient window.
    pub faulting: bool,
    /// `true` if the access *definitely* reads labeled bytes on the
    /// architectural path (resolved address within a labeled range), so
    /// its taint is architecturally live — in contrast to a wild load
    /// whose secret-reaching instances only exist transiently.
    pub definite: bool,
}

/// Transmission channel of a sink.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Channel {
    /// Load with tainted address: d-cache fill keyed by the secret.
    DCacheLoad,
    /// Store with tainted address: d-cache RFO/fill keyed by the secret.
    DCacheStore,
    /// Indirect jump/call/return steered by tainted data: BTB channel.
    Btb,
    /// Conditional branch on tainted data: execution-port / FPU-power /
    /// predictor channel.
    CtrlBranch,
}

impl Channel {
    /// Stable JSON identifier.
    pub fn name(self) -> &'static str {
        match self {
            Channel::DCacheLoad => "dcache-load",
            Channel::DCacheStore => "dcache-store",
            Channel::Btb => "btb",
            Channel::CtrlBranch => "ctrl-branch",
        }
    }
}

/// A transmitter found at one instruction.
#[derive(Debug, Clone)]
pub struct SinkInfo {
    /// Channel kind.
    pub channel: Channel,
    /// Taint mask of the transmitted operand.
    pub taint: u64,
    /// Defining pcs of the tainted operand (chain reconstruction roots).
    pub operand_defs: Vec<u32>,
}

/// Per-instruction facts after the fixpoint.
#[derive(Debug, Clone, Default)]
pub struct InstFact {
    /// Transmitter at this pc, if any.
    pub sink: Option<SinkInfo>,
    /// For stores: the address operand is load-derived (SSB candidate).
    pub store_addr_load_derived: bool,
}

/// Result of the dataflow pass.
#[derive(Debug)]
pub struct Analysis {
    /// Discovered sources; the index is the taint-bit id.
    pub sources: Vec<SourceInfo>,
    /// Def-use links: pc → defining pcs of its tainted operands.
    pub taint_from: BTreeMap<u32, BTreeSet<u32>>,
    /// Per-instruction facts (indexed by pc).
    pub facts: Vec<InstFact>,
}

struct Engine<'a> {
    p: &'a Program,
    spec: &'a SecretSpec,
    source_ids: HashMap<usize, u32>,
    sources: Vec<SourceInfo>,
    taint_from: BTreeMap<u32, BTreeSet<u32>>,
    /// Memory taint written through resolved addresses, keyed by store pc:
    /// (interval, byte length, taint mask).
    mem_by_store: BTreeMap<usize, (AbsVal, u64, u64)>,
    /// Taint written through unresolved addresses (reaches any load).
    wild_mem: u64,
    wild_mem_defs: BTreeSet<u32>,
}

impl<'a> Engine<'a> {
    fn source_bit(&mut self, pc: usize, kind: SourceKind, faulting: bool, definite: bool) -> u64 {
        let next = self.sources.len() as u32;
        let id = *self.source_ids.entry(pc).or_insert(next);
        let info = SourceInfo {
            pc,
            kind,
            faulting,
            definite,
        };
        if id as usize == self.sources.len() {
            self.sources.push(info);
        } else {
            // Later fixpoint rounds see wider (joined) states: keep the
            // latest classification so the final collection pass wins.
            self.sources[id as usize] = info;
        }
        1u64 << (id as u64).min(63)
    }

    fn link(&mut self, pc: usize, defs: &[u32]) {
        if !defs.is_empty() {
            self.taint_from
                .entry(pc as u32)
                .or_default()
                .extend(defs.iter().copied());
        }
    }

    /// Taint picked up by a load covering `addr`/`size` from the memory
    /// summaries, plus the store pcs providing it (for chain links).
    fn mem_taint(&self, addr: AbsVal, size: u64) -> (u64, Vec<u32>) {
        let mut mask = self.wild_mem;
        let mut defs: Vec<u32> = self.wild_mem_defs.iter().copied().collect();
        for (&spc, &(saddr, slen, smask)) in &self.mem_by_store {
            let hit = match (addr, saddr) {
                (AbsVal::Range(al, ah), AbsVal::Range(sl, sh)) => {
                    al < sh.saturating_add(slen) && sl < ah.saturating_add(size)
                }
                _ => true,
            };
            if hit {
                mask |= smask;
                defs.push(spc as u32);
            }
        }
        (mask, defs)
    }

    /// Transfer one instruction. When `facts` is given (final collection
    /// pass) sinks and SSB candidates are recorded.
    fn transfer(&mut self, pc: usize, st: &mut State, facts: Option<&mut InstFact>) {
        let inst = self.p.insts[pc];
        match inst {
            Inst::Li { rd, imm } => {
                st.set(rd, RegAbs::def(pc, AbsVal::constant(imm), 0, false));
            }
            Inst::Alu { op, rd, rs1, src2 } => {
                let a = st.get(rs1);
                let b = match src2 {
                    Src2::Reg(r) => st.get(r),
                    Src2::Imm(i) => RegAbs {
                        val: AbsVal::constant(i),
                        taint: 0,
                        load_derived: false,
                        defs: Vec::new(),
                    },
                };
                let mut links = Vec::new();
                if a.taint != 0 {
                    links.extend_from_slice(&a.defs);
                }
                if b.taint != 0 {
                    links.extend_from_slice(&b.defs);
                }
                self.link(pc, &links);
                st.set(
                    rd,
                    RegAbs::def(
                        pc,
                        AbsVal::apply(op, a.val, b.val),
                        a.taint | b.taint,
                        a.load_derived || b.load_derived,
                    ),
                );
            }
            Inst::Load {
                rd,
                base,
                off,
                size,
            } => {
                let b = st.get(base);
                let addr = b.val.offset(off);
                let bytes = size.bytes();
                let mut taint = b.taint;
                let mut links: Vec<u32> = if b.taint != 0 {
                    b.defs.clone()
                } else {
                    Vec::new()
                };
                // Source classification.
                let src_bit = match addr {
                    AbsVal::Range(l, h) => {
                        let span = (h - l).saturating_add(bytes);
                        let definite = self.spec.contains(l, span);
                        let faulting = h.saturating_add(bytes) > KERNEL_BASE;
                        if self.spec.overlaps(l, span) {
                            let kind = if faulting {
                                SourceKind::PrivilegedLoad
                            } else {
                                SourceKind::LabeledLoad
                            };
                            Some(self.source_bit(pc, kind, faulting, definite))
                        } else {
                            None
                        }
                    }
                    // A data-dependent unknown address may alias secret
                    // state; a merge-smeared one never resolved near a
                    // labeled range on any single path.
                    AbsVal::TopData => {
                        if !self.spec.ranges.is_empty() {
                            Some(self.source_bit(pc, SourceKind::WildLoad, false, false))
                        } else {
                            None
                        }
                    }
                    AbsVal::TopMerge => None,
                };
                taint |= src_bit.unwrap_or(0);
                let (mmask, mdefs) = self.mem_taint(addr, bytes);
                if mmask != 0 {
                    taint |= mmask;
                    links.extend_from_slice(&mdefs);
                }
                self.link(pc, &links);
                if let Some(f) = facts {
                    if b.taint != 0 {
                        f.sink = Some(SinkInfo {
                            channel: Channel::DCacheLoad,
                            taint: b.taint,
                            operand_defs: b.defs.clone(),
                        });
                    }
                }
                st.set(rd, RegAbs::def(pc, AbsVal::TopData, taint, true));
            }
            Inst::Store {
                src,
                base,
                off,
                size,
            } => {
                let s = st.get(src);
                let b = st.get(base);
                let addr = b.val.offset(off);
                if s.taint != 0 {
                    match addr {
                        AbsVal::Range(..) => {
                            let entry =
                                self.mem_by_store
                                    .entry(pc)
                                    .or_insert((addr, size.bytes(), 0));
                            entry.0 = entry.0.join(addr);
                            entry.2 |= s.taint;
                        }
                        AbsVal::TopData | AbsVal::TopMerge => {
                            self.wild_mem |= s.taint;
                            self.wild_mem_defs.extend(s.defs.iter().copied());
                        }
                    }
                    self.link(pc, &s.defs);
                }
                if b.taint != 0 {
                    self.link(pc, &b.defs);
                }
                if let Some(f) = facts {
                    f.store_addr_load_derived = b.load_derived;
                    if b.taint != 0 {
                        f.sink = Some(SinkInfo {
                            channel: Channel::DCacheStore,
                            taint: b.taint,
                            operand_defs: b.defs.clone(),
                        });
                    }
                }
            }
            Inst::Branch { rs1, rs2, .. } => {
                let a = st.get(rs1);
                let b = st.get(rs2);
                let taint = a.taint | b.taint;
                if taint != 0 {
                    let mut defs = a.defs.clone();
                    defs.extend_from_slice(&b.defs);
                    self.link(pc, &defs);
                    if let Some(f) = facts {
                        f.sink = Some(SinkInfo {
                            channel: Channel::CtrlBranch,
                            taint,
                            operand_defs: defs,
                        });
                    }
                }
            }
            Inst::JmpInd { base } | Inst::CallInd { base } => {
                let b = st.get(base);
                if b.taint != 0 {
                    self.link(pc, &b.defs);
                    if let Some(f) = facts {
                        f.sink = Some(SinkInfo {
                            channel: Channel::Btb,
                            taint: b.taint,
                            operand_defs: b.defs.clone(),
                        });
                    }
                }
                if matches!(inst, Inst::CallInd { .. }) {
                    st.set(
                        nda_isa::reg::RA,
                        RegAbs::def(pc, AbsVal::constant(pc as u64 + 1), 0, false),
                    );
                }
            }
            Inst::Call { .. } => {
                st.set(
                    nda_isa::reg::RA,
                    RegAbs::def(pc, AbsVal::constant(pc as u64 + 1), 0, false),
                );
            }
            Inst::Ret => {
                let ra = st.get(nda_isa::reg::RA);
                if ra.taint != 0 {
                    self.link(pc, &ra.defs);
                    if let Some(f) = facts {
                        f.sink = Some(SinkInfo {
                            channel: Channel::Btb,
                            taint: ra.taint,
                            operand_defs: ra.defs.clone(),
                        });
                    }
                }
            }
            Inst::RdCycle { rd } => {
                st.set(rd, RegAbs::def(pc, AbsVal::TopData, 0, false));
            }
            Inst::RdMsr { rd, idx } => {
                let user_ok = self.p.msr_user_ok.contains(&idx);
                let labeled = self.spec.msr_labeled(idx) || (self.spec.privileged && !user_ok);
                let taint = if labeled {
                    self.source_bit(pc, SourceKind::SecretMsr, !user_ok, true)
                } else {
                    0
                };
                st.set(rd, RegAbs::def(pc, AbsVal::TopData, taint, true));
            }
            Inst::ClFlush { .. }
            | Inst::Jmp { .. }
            | Inst::Fence
            | Inst::SpecOff
            | Inst::SpecOn
            | Inst::Nop
            | Inst::Halt => {}
        }
    }
}

/// Run the dataflow fixpoint over `cfg` and collect per-instruction facts.
pub fn run(p: &Program, spec: &SecretSpec, cfg: &Cfg) -> Analysis {
    let n = p.insts.len();
    let nblocks = cfg.blocks().len();
    let mut eng = Engine {
        p,
        spec,
        source_ids: HashMap::new(),
        sources: Vec::new(),
        taint_from: BTreeMap::new(),
        mem_by_store: BTreeMap::new(),
        wild_mem: 0,
        wild_mem_defs: BTreeSet::new(),
    };

    let handler_block = p.fault_handler.filter(|&h| h < n).map(|h| cfg.block_of(h));
    let entry_block = cfg.block_of(p.entry.min(n.saturating_sub(1)));

    // The memory summaries grow monotonically but feed back into the
    // register fixpoint, so iterate the whole pass until they stabilize
    // (bounded: a handful of tainted stores at most).
    let mut in_states: Vec<Option<State>> = Vec::new();
    for _round in 0..8 {
        let mem_before = (eng.mem_by_store.clone(), eng.wild_mem);
        in_states = vec![None; nblocks];
        in_states[entry_block] = Some(State::entry());
        let mut work: VecDeque<usize> = VecDeque::from([entry_block]);
        let mut queued = vec![false; nblocks];
        queued[entry_block] = true;
        while let Some(bid) = work.pop_front() {
            queued[bid] = false;
            let block = &cfg.blocks()[bid];
            let mut st = match &in_states[bid] {
                Some(s) => s.clone(),
                None => continue,
            };
            let merge = |tgt: usize, st: &State, in_states: &mut Vec<Option<State>>| -> bool {
                match &mut in_states[tgt] {
                    Some(cur) => cur.join_from(st),
                    slot @ None => {
                        *slot = Some(st.clone());
                        true
                    }
                }
            };
            for pc in block.start..block.end {
                eng.transfer(pc, &mut st, None);
                if let Some(hb) = handler_block {
                    if p.insts[pc].may_fault() && merge(hb, &st, &mut in_states) && !queued[hb] {
                        queued[hb] = true;
                        work.push_back(hb);
                    }
                }
            }
            for t in nda_isa::inst_successors(
                p,
                block.end - 1,
                cfg.indirect_targets(),
                cfg.return_sites(),
            ) {
                let tb = cfg.block_of(t);
                if merge(tb, &st, &mut in_states) && !queued[tb] {
                    queued[tb] = true;
                    work.push_back(tb);
                }
            }
        }
        if (eng.mem_by_store.clone(), eng.wild_mem) == mem_before {
            break;
        }
    }

    // Collection pass: re-walk every visited block from its fixed in-state.
    let mut facts = vec![InstFact::default(); n];
    for (bid, block) in cfg.blocks().iter().enumerate() {
        let Some(in_st) = &in_states[bid] else {
            continue;
        };
        let mut st = in_st.clone();
        for (pc, slot) in facts
            .iter_mut()
            .enumerate()
            .take(block.end)
            .skip(block.start)
        {
            let mut f = InstFact::default();
            eng.transfer(pc, &mut st, Some(&mut f));
            *slot = f;
        }
    }

    Analysis {
        sources: eng.sources,
        taint_from: eng.taint_from,
        facts,
    }
}
