//! Speculation-window modeling and per-variant suppression.
//!
//! A taint chain is only a *gadget* if it can execute transiently: the
//! access→transmit chain must fit inside the bounded window opened by a
//! **trigger** — a mispredictable branch, an indirect call/jump, a return,
//! a bypassable store (Spectre v4), or an architectural fault
//! (Meltdown/LazyFP). Each trigger's window is a BFS over speculative
//! successors, cut at serializing instructions (`fence`, `rdcycle`,
//! `spec_off`…) and bounded by the ROB size.
//!
//! Suppression then follows the paper's Table 2 semantics per trigger: a
//! variant kills the gadget only if it blocks *every* trigger.

use std::collections::{HashMap, VecDeque};

use nda_core::{config::CoreModel, SimConfig, Variant};
use nda_isa::inst::UopClass;
use nda_isa::{Cfg, Program};

use crate::absint::{Analysis, Channel, SourceInfo};

/// How a transient window is opened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TriggerKind {
    /// Mispredicted conditional branch (either arm may be the wrong path).
    CondBranch,
    /// Mispredicted indirect call/jump target (BTB steering).
    IndirectCall,
    /// Mispredicted return address (RAS steering).
    ReturnMispredict,
    /// Store whose address resolves late: younger loads may bypass it and
    /// read stale data (Spectre v4 / SSB).
    SsbStore,
    /// Architectural fault whose value still propagates transiently
    /// (Meltdown-style implementation flaw).
    Fault,
}

impl TriggerKind {
    /// Stable JSON identifier.
    pub fn name(self) -> &'static str {
        match self {
            TriggerKind::CondBranch => "cond-branch",
            TriggerKind::IndirectCall => "indirect-call",
            TriggerKind::ReturnMispredict => "return",
            TriggerKind::SsbStore => "ssb-store",
            TriggerKind::Fault => "fault",
        }
    }

    /// `true` for control-flow speculation (the class InvisiSpec-Spectre
    /// and NDA's propagation policies defend).
    pub fn is_control(self) -> bool {
        matches!(
            self,
            TriggerKind::CondBranch | TriggerKind::IndirectCall | TriggerKind::ReturnMispredict
        )
    }
}

/// One window-opening instruction with its transient reach.
#[derive(Debug, Clone)]
pub struct Trigger {
    /// Instruction index of the trigger.
    pub pc: usize,
    /// Kind of speculation.
    pub kind: TriggerKind,
    /// Transiently reachable pcs → distance (instructions into the
    /// window, 1-based).
    pub window: HashMap<usize, u32>,
}

/// A trigger attached to a specific gadget, with the sink's distance.
#[derive(Debug, Clone)]
pub struct TriggerInfo {
    /// Instruction index of the trigger.
    pub pc: usize,
    /// Kind of speculation.
    pub kind: TriggerKind,
    /// Instructions between window entry and the transmitter.
    pub distance: u32,
}

/// Per-pc in-state of the speculation-control dataflow: which modes
/// execution can be in when the instruction *dispatches*.
const SPEC_ON: u8 = 0b01;
const SPEC_OFF: u8 = 0b10;

/// Forward dataflow over the static CFG edges computing, per pc, whether
/// execution can only arrive there inside a Listing-4 no-speculation
/// window (`SpecOff` committed, no matching `SpecOn` yet).
///
/// `out[pc]` is `true` iff every architectural path reaching `pc` has
/// executed `spec_off` more recently than any `spec_on`. On such a pc the
/// out-of-order core dispatches one instruction at a time with no
/// wrong-path dispatch, so an otherwise mispredictable instruction there
/// cannot open a transient window: [`find_triggers`] skips it. `SpecOff`
/// takes effect at *commit*, which is exactly the in-state here — with
/// dispatch serialized, the instruction after a committed `spec_off`
/// enters the ROB alone.
///
/// Architecturally unreachable pcs (in-state bottom) are *not* treated as
/// disabled: the static edge set is an over-approximation, and keeping
/// them conservative leaves programs without `spec_off` entirely
/// unaffected. The fault-handler edge propagates the faulting pc's state:
/// the window survives a committed fault (only a committed `spec_on` ends
/// it).
pub fn spec_disabled(p: &Program, cfg: &Cfg) -> Vec<bool> {
    let n = p.insts.len();
    if n == 0 {
        return Vec::new();
    }
    let mut state = vec![0u8; n];
    let entry = p.entry.min(n - 1);
    state[entry] = SPEC_ON;
    let mut work: VecDeque<usize> = VecDeque::from([entry]);
    let mut queued = vec![false; n];
    queued[entry] = true;
    while let Some(pc) = work.pop_front() {
        queued[pc] = false;
        let out = match p.insts[pc] {
            nda_isa::Inst::SpecOff => SPEC_OFF,
            nda_isa::Inst::SpecOn => SPEC_ON,
            _ => state[pc],
        };
        let mut push = |t: usize, state: &mut Vec<u8>, work: &mut VecDeque<usize>| {
            if state[t] | out != state[t] {
                state[t] |= out;
                if !queued[t] {
                    queued[t] = true;
                    work.push_back(t);
                }
            }
        };
        for t in nda_isa::inst_successors(p, pc, cfg.indirect_targets(), cfg.return_sites()) {
            push(t, &mut state, &mut work);
        }
        if p.insts[pc].may_fault() {
            if let Some(h) = p.fault_handler.filter(|&h| h < n) {
                push(h, &mut state, &mut work);
            }
        }
    }
    state.iter().map(|&s| s == SPEC_OFF).collect()
}

/// BFS over speculative successors from `starts`, bounded by `window`
/// instructions, not expanding past serializing instructions (which never
/// execute speculatively and so end the transient window).
fn window_from(p: &Program, cfg: &Cfg, starts: &[usize], window: usize) -> HashMap<usize, u32> {
    let mut dist: HashMap<usize, u32> = HashMap::new();
    let mut queue: VecDeque<(usize, u32)> = VecDeque::new();
    for &s in starts {
        if s < p.insts.len() && !dist.contains_key(&s) {
            dist.insert(s, 1);
            queue.push_back((s, 1));
        }
    }
    while let Some((pc, d)) = queue.pop_front() {
        if d as usize >= window {
            continue;
        }
        let inst = p.insts[pc];
        if inst.class() == UopClass::Serializing {
            continue;
        }
        for t in nda_isa::inst_successors(p, pc, cfg.indirect_targets(), cfg.return_sites()) {
            if let std::collections::hash_map::Entry::Vacant(e) = dist.entry(t) {
                e.insert(d + 1);
                queue.push_back((t, d + 1));
            }
        }
    }
    // Serializing instructions never execute speculatively: drop them from
    // the window itself.
    dist.retain(|&pc, _| p.insts[pc].class() != UopClass::Serializing);
    dist
}

/// Enumerate every trigger of `p` with its transient window.
pub fn find_triggers(
    p: &Program,
    cfg: &Cfg,
    analysis: &Analysis,
    window: usize,
    track_ssb: bool,
) -> Vec<Trigger> {
    let disabled = spec_disabled(p, cfg);
    let mut out = Vec::new();
    for (pc, inst) in p.insts.iter().enumerate() {
        // Inside a definite no-speculation window nothing dispatches past
        // an unresolved instruction: the would-be trigger cannot open a
        // transient window (branches resolve before successors enter the
        // ROB, stores cannot be bypassed, a faulting access commits
        // before any dependent issues).
        if disabled[pc] {
            continue;
        }
        let (kind, starts): (TriggerKind, Vec<usize>) = match inst {
            nda_isa::Inst::Branch { .. } => (
                TriggerKind::CondBranch,
                nda_isa::inst_successors(p, pc, cfg.indirect_targets(), cfg.return_sites()),
            ),
            nda_isa::Inst::JmpInd { .. } | nda_isa::Inst::CallInd { .. } => {
                (TriggerKind::IndirectCall, cfg.indirect_targets().to_vec())
            }
            nda_isa::Inst::Ret => {
                let mut s = cfg.return_sites().to_vec();
                s.extend_from_slice(cfg.indirect_targets());
                (TriggerKind::ReturnMispredict, s)
            }
            nda_isa::Inst::Store { .. }
                if track_ssb && analysis.facts[pc].store_addr_load_derived =>
            {
                (TriggerKind::SsbStore, vec![pc + 1])
            }
            _ => continue,
        };
        out.push(Trigger {
            pc,
            kind,
            window: window_from(p, cfg, &starts, window),
        });
    }
    // Fault triggers: one per faulting source.
    for src in &analysis.sources {
        if src.faulting && !disabled[src.pc] {
            out.push(Trigger {
                pc: src.pc,
                kind: TriggerKind::Fault,
                window: window_from(p, cfg, &[src.pc + 1], window),
            });
        }
    }
    out
}

/// Attach the triggers under which the `(source, sink)` chain executes
/// transiently.
pub fn triggers_for(
    triggers: &[Trigger],
    source: &SourceInfo,
    sink_pc: usize,
) -> Vec<(usize, TriggerInfo)> {
    let mut out = Vec::new();
    for (ti, t) in triggers.iter().enumerate() {
        let Some(&sink_d) = t.window.get(&sink_pc) else {
            continue;
        };
        let applies = match t.kind {
            // The faulting access *is* the source.
            TriggerKind::Fault => t.pc == source.pc,
            // The bypassed (stale-reading) load must sit in the store's
            // unresolved window.
            TriggerKind::SsbStore => t.window.contains_key(&source.pc),
            // Control speculation: either the secret access itself runs on
            // the wrong path, or the secret is already architecturally
            // live (a definite labeled access) when the trigger fetches.
            k if k.is_control() => t.window.contains_key(&source.pc) || source.definite,
            _ => false,
        };
        if applies {
            out.push((
                ti,
                TriggerInfo {
                    pc: t.pc,
                    kind: t.kind,
                    distance: sink_d,
                },
            ));
        }
    }
    out
}

/// Would `variant` suppress a gadget with the given channel, chain and
/// triggers? `chain_no_sink` is every chain pc except the transmitter.
pub fn suppressed_by(
    p: &Program,
    variant: Variant,
    channel: Channel,
    chain_no_sink: &[usize],
    triggers: &[(usize, TriggerInfo)],
    windows: &[Trigger],
) -> bool {
    let sc = SimConfig::for_variant(variant);
    if sc.model == CoreModel::InOrder {
        return true;
    }
    // InvisiSpec hides speculative *loads* from the cache hierarchy and
    // Delay-On-Miss delays them: only the d-cache load channel is covered
    // — and only during control-flow speculation, except for
    // InvisiSpec-Future which covers every form of speculation.
    if let Some(is) = sc.invisispec {
        return channel == Channel::DCacheLoad
            && (is == nda_core::IsVariant::Future
                || triggers.iter().all(|(_, t)| t.kind.is_control()));
    }
    if sc.core.delay_on_miss {
        return channel == Channel::DCacheLoad && triggers.iter().all(|(_, t)| t.kind.is_control());
    }
    // STT / ShadowBinding gate *transmitting* uses of tainted data: the
    // explicit channels (tainted load/store address, tainted indirect
    // target) are covered, the conditional-branch implicit channel is
    // deliberately not. Taint originates at speculative loads only, so a
    // control-triggered gadget is dead iff a load of the chain sits inside
    // the transient window; chosen-code and memory-order triggers taint
    // only under the futuristic threat model. Untaint timing (propagated /
    // eager / lazy) affects cost, never coverage.
    if let Some(tp) = sc.taint {
        if channel == Channel::CtrlBranch {
            return false;
        }
        let blocked = |(ti, info): &(usize, TriggerInfo)| -> bool {
            match info.kind {
                TriggerKind::Fault | TriggerKind::SsbStore => {
                    tp.threat == nda_core::TaintThreat::Futuristic
                }
                _ => {
                    let win = &windows[*ti].window;
                    chain_no_sink
                        .iter()
                        .any(|pc| win.contains_key(pc) && p.insts[*pc].is_load_like())
                }
            }
        };
        return !triggers.is_empty() && triggers.iter().all(blocked);
    }
    let policy = sc.policy;
    let blocked = |(ti, info): &(usize, TriggerInfo)| -> bool {
        match info.kind {
            // Load restriction keeps the faulting/stale value from ever
            // broadcasting; bypass restriction forbids the bypass itself.
            TriggerKind::Fault => policy.load_restriction,
            TriggerKind::SsbStore => policy.bypass_restriction || policy.load_restriction,
            _ => {
                let win = &windows[*ti].window;
                let any_in = chain_no_sink.iter().any(|pc| win.contains_key(pc));
                let any_load_in = chain_no_sink
                    .iter()
                    .any(|pc| win.contains_key(pc) && p.insts[*pc].is_load_like());
                use nda_core::Propagation;
                (policy.propagation == Propagation::Strict && any_in)
                    || (policy.propagation == Propagation::Permissive && any_load_in)
                    || (policy.load_restriction && any_load_in)
            }
        }
    };
    !triggers.is_empty() && triggers.iter().all(blocked)
}
