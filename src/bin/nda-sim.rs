//! `nda-sim` — command-line driver for the NDA reproduction.
//!
//! ```text
//! nda-sim variants                         list core configurations
//! nda-sim workloads                        list synthetic kernels
//! nda-sim attacks                          list attack PoCs
//! nda-sim run <workload> [options]         run a kernel, print a report
//! nda-sim attack <attack> [options]        run an attack, print the verdict
//! nda-sim matrix [--secret B]              full attack x variant matrix
//! nda-sim sweep [options]                  normalised-CPI sweep (mini Fig 7)
//! nda-sim save <workload> <file> [options] encode a kernel to a binary file
//! nda-sim exec <file> [options]            run an encoded program file
//! nda-sim trace <attack> [options]         pipeline-trace an attack window
//! nda-sim verify [options]                 fault-injection differential harness
//! nda-sim analyze <target> [options]       static speculative-leakage analysis;
//!                                          target is an attack name, a workload
//!                                          name, or an encoded program file
//! nda-sim harden <target> [options]        analysis-guided software mitigation:
//!                                          rewrite the target until it carries
//!                                          zero static gadgets (same target
//!                                          resolution as analyze); exits
//!                                          nonzero if residual gadgets remain
//! nda-sim serve [options]                  long-running simulation server
//!                                          (line-delimited JSON over TCP, or
//!                                          stdin/stdout with --stdio)
//! nda-sim client [options]                 pipeline a batch of request lines
//!                                          (--input file, default stdin) to a
//!                                          server and print the responses
//!
//! options:
//!   --json              analyze/harden: emit the machine-readable report
//!                       (for harden: the hardened program's re-analysis)
//!   --validate          analyze: execute each reported gadget on Base OoO
//!                       (expect a transient leak) and under Full Protection
//!                       (expect suppression)
//!                       harden: prove the rewrite — architectural
//!                       equivalence modulo relocation on the reference
//!                       interpreter, plus every original gadget dynamically
//!                       dead on Base OoO
//!   --window <n>        analyze/harden: speculation-window depth
//!                       (default: ROB size)
//!   --passes <list>     harden/sweep --mitigate: comma-separated subset of
//!                       fence,mask,thunk (default: all)
//!   --out <file>        harden: write the hardened program, encoded
//!   --mitigate <list>   sweep: price the software-mitigation axis instead —
//!                       harden every workload under blanket secret labeling
//!                       with the given passes (or `all`) and print
//!                       hardware-NDA vs software vs both overhead, Fig-7
//!                       style
//!   --variant <name>    core configuration (default OoO; see `variants`)
//!   --iters <n>         workload iterations / verify programs (default 200)
//!   --seed <n>          workload / verify seed (default 1)
//!   --secret <byte>     attack secret byte (default 42)
//!   --samples <n>       sweep samples per cell (default 2)
//!   --inject <kinds>    verify only: comma-separated squash,memlat,predictor
//!                       (default: all three; `--inject none` disables)
//!   --sample-every <n>  run/sweep: sampled simulation — functional
//!                       fast-forward with warming, one detailed window
//!                       every n instructions (default 0 = full detail)
//!   --warm <n>          sampled window warm-up instructions (default 2000)
//!   --detail <n>        sampled window measured instructions (default 2000)
//!   --trace-out <file>  run/trace: write the full pipeline event trace
//!   --trace-format <f>  trace file format: perfetto (default) or konata
//!   --metrics-out <file> run/sweep: write the metrics-registry JSON document
//!   --jobs <n>          sweep: worker threads (default: host parallelism;
//!                       any value yields bit-identical results)
//!   --retries <n>       sweep: extra attempts per failed cell (default 1)
//!   --deadline-cycles <n> sweep: per-job cycle deadline; a cell that
//!                       exceeds it degrades to FAILED (default 2e9)
//!   --journal <dir>     sweep: crash-safe resume journal — completed cells
//!                       are recorded as they finish and skipped on rerun
//!   --checkpoint-dir <dir> run/sweep/serve: persistent checkpoint store —
//!                       sampled fast-forward results are content-addressed by
//!                       workload + schedule + machine geometry and reused
//!                       across runs (env fallback: NDA_CKPT_DIR)
//!   --ckpt-max-bytes <n> size cap for the checkpoint store: after each save
//!                       (and with --checkpoint-gc, eagerly) oldest entries
//!                       are evicted until the store fits (env fallback:
//!                       NDA_CKPT_MAX_BYTES; 0 = uncapped)
//!   --checkpoint-gc     run/sweep: garbage-collect the checkpoint store to
//!                       --ckpt-max-bytes before the command runs
//!   --addr <host:port>  serve/client: server address
//!                       (default 127.0.0.1:4209; serve accepts :0)
//!   --stdio             serve: speak the protocol on stdin/stdout instead
//!                       of TCP
//!   --shards <n>        serve: shard worker threads (default: host
//!                       parallelism); jobs land on request-key hash % n
//!   --result-dir <dir>  serve: persistent result store — finished run cells
//!                       are content-addressed and reused across restarts
//!                       (env fallback: NDA_RESULT_DIR)
//!   --result-max-bytes <n> serve: size cap for the result store (env
//!                       fallback: NDA_RESULT_MAX_BYTES; 0 = uncapped)
//!   --input <file>      client: request batch file (default: stdin); blank
//!                       lines and # comments are skipped
//!   --chaos-panic <pct> sweep: chaos harness, panic in pct% of jobs
//!   --chaos-slow <pct>  sweep: chaos harness, starve pct% of jobs so they
//!                       degrade to a deadline error
//!   --chaos-seed <n>    sweep: chaos decision seed (default 0)
//! ```

use nda::attacks::{run_attack, AttackKind};
use nda::core::{run_variant, Variant};
use nda::workloads::{all, by_name, WorkloadParams};
use std::process::ExitCode;

const MAX_CYCLES: u64 = 2_000_000_000;

fn parse_variant(name: &str) -> Option<Variant> {
    Variant::all().into_iter().find(|v| {
        v.name().eq_ignore_ascii_case(name)
            || v.name()
                .replace([' ', '-'], "")
                .eq_ignore_ascii_case(&name.replace(['-', '_'], ""))
    })
}

fn parse_attack(name: &str) -> Option<AttackKind> {
    let squash = |s: &str| {
        s.to_ascii_lowercase()
            .replace([' ', '-', '_', '(', ')'], "")
    };
    AttackKind::all()
        .into_iter()
        .find(|k| squash(k.name()).contains(&squash(name)))
}

struct Opts {
    variant: Variant,
    iters: u64,
    seed: u64,
    secret: u8,
    samples: u64,
    inject: String,
    sample_every: u64,
    warm: u64,
    detail: u64,
    json: bool,
    validate: bool,
    window: Option<usize>,
    passes: String,
    out: Option<String>,
    mitigate: Option<String>,
    trace_out: Option<String>,
    trace_format: nda::trace::TraceFormat,
    metrics_out: Option<String>,
    jobs: Option<usize>,
    retries: u32,
    deadline_cycles: u64,
    journal: Option<String>,
    ckpt_dir: Option<String>,
    ckpt_max_bytes: Option<u64>,
    checkpoint_gc: bool,
    chaos_panic: u8,
    chaos_slow: u8,
    chaos_seed: u64,
    addr: String,
    stdio: bool,
    shards: Option<usize>,
    result_dir: Option<String>,
    result_max_bytes: Option<u64>,
    input: Option<String>,
}

/// Parse a "positive u64 or absent" environment knob; `0` disables.
fn env_cap(name: &str) -> Option<u64> {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .filter(|&n| n > 0)
}

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut o = Opts {
        variant: Variant::Ooo,
        iters: 200,
        seed: 1,
        secret: 42,
        samples: 2,
        inject: "squash,memlat,predictor".into(),
        sample_every: 0,
        warm: 2_000,
        detail: 2_000,
        json: false,
        validate: false,
        window: None,
        passes: "all".into(),
        out: None,
        mitigate: None,
        trace_out: None,
        trace_format: nda::trace::TraceFormat::Perfetto,
        metrics_out: None,
        jobs: None,
        retries: 1,
        deadline_cycles: MAX_CYCLES,
        journal: None,
        ckpt_dir: std::env::var("NDA_CKPT_DIR").ok(),
        ckpt_max_bytes: env_cap("NDA_CKPT_MAX_BYTES"),
        checkpoint_gc: false,
        chaos_panic: 0,
        chaos_slow: 0,
        chaos_seed: 0,
        addr: "127.0.0.1:4209".into(),
        stdio: false,
        shards: None,
        result_dir: std::env::var("NDA_RESULT_DIR").ok(),
        result_max_bytes: env_cap("NDA_RESULT_MAX_BYTES"),
        input: None,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut val = |flag: &str| {
            it.next()
                .map(String::as_str)
                .ok_or(format!("{flag} needs a value"))
                .map(String::from)
        };
        match a.as_str() {
            "--variant" => {
                let v = val("--variant")?;
                o.variant = parse_variant(&v).ok_or(format!("unknown variant {v:?}"))?;
            }
            "--iters" => {
                o.iters = val("--iters")?
                    .parse()
                    .map_err(|e| format!("--iters: {e}"))?
            }
            "--seed" => o.seed = val("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--secret" => {
                o.secret = val("--secret")?
                    .parse()
                    .map_err(|e| format!("--secret: {e}"))?
            }
            "--samples" => {
                o.samples = val("--samples")?
                    .parse()
                    .map_err(|e| format!("--samples: {e}"))?
            }
            "--inject" => o.inject = val("--inject")?,
            "--sample-every" => {
                o.sample_every = val("--sample-every")?
                    .parse()
                    .map_err(|e| format!("--sample-every: {e}"))?
            }
            "--warm" => o.warm = val("--warm")?.parse().map_err(|e| format!("--warm: {e}"))?,
            "--detail" => {
                o.detail = val("--detail")?
                    .parse()
                    .map_err(|e| format!("--detail: {e}"))?
            }
            "--json" => o.json = true,
            "--validate" => o.validate = true,
            "--passes" => o.passes = val("--passes")?,
            "--out" => o.out = Some(val("--out")?),
            "--mitigate" => o.mitigate = Some(val("--mitigate")?),
            "--trace-out" => o.trace_out = Some(val("--trace-out")?),
            "--trace-format" => {
                let f = val("--trace-format")?;
                o.trace_format = nda::trace::TraceFormat::parse(&f)
                    .ok_or(format!("--trace-format: {f:?} (use perfetto or konata)"))?;
            }
            "--metrics-out" => o.metrics_out = Some(val("--metrics-out")?),
            "--jobs" => o.jobs = Some(val("--jobs")?.parse().map_err(|e| format!("--jobs: {e}"))?),
            "--retries" => {
                o.retries = val("--retries")?
                    .parse()
                    .map_err(|e| format!("--retries: {e}"))?
            }
            "--deadline-cycles" => {
                o.deadline_cycles = val("--deadline-cycles")?
                    .parse()
                    .map_err(|e| format!("--deadline-cycles: {e}"))?
            }
            "--journal" => o.journal = Some(val("--journal")?),
            "--checkpoint-dir" => o.ckpt_dir = Some(val("--checkpoint-dir")?),
            "--ckpt-max-bytes" => {
                o.ckpt_max_bytes = Some(
                    val("--ckpt-max-bytes")?
                        .parse()
                        .map_err(|e| format!("--ckpt-max-bytes: {e}"))?,
                )
                .filter(|&n| n > 0)
            }
            "--checkpoint-gc" => o.checkpoint_gc = true,
            "--addr" => o.addr = val("--addr")?,
            "--stdio" => o.stdio = true,
            "--shards" => {
                o.shards = Some(
                    val("--shards")?
                        .parse()
                        .map_err(|e| format!("--shards: {e}"))?,
                )
            }
            "--result-dir" => o.result_dir = Some(val("--result-dir")?),
            "--result-max-bytes" => {
                o.result_max_bytes = Some(
                    val("--result-max-bytes")?
                        .parse()
                        .map_err(|e| format!("--result-max-bytes: {e}"))?,
                )
                .filter(|&n| n > 0)
            }
            "--input" => o.input = Some(val("--input")?),
            "--chaos-panic" => {
                o.chaos_panic = val("--chaos-panic")?
                    .parse()
                    .map_err(|e| format!("--chaos-panic: {e}"))?
            }
            "--chaos-slow" => {
                o.chaos_slow = val("--chaos-slow")?
                    .parse()
                    .map_err(|e| format!("--chaos-slow: {e}"))?
            }
            "--chaos-seed" => {
                o.chaos_seed = val("--chaos-seed")?
                    .parse()
                    .map_err(|e| format!("--chaos-seed: {e}"))?
            }
            "--window" => {
                o.window = Some(
                    val("--window")?
                        .parse()
                        .map_err(|e| format!("--window: {e}"))?,
                )
            }
            other => return Err(format!("unknown option {other:?}")),
        }
    }
    Ok(o)
}

fn cmd_variants() {
    println!("{:<22}description", "name");
    for v in Variant::all() {
        let desc = match v {
            Variant::Ooo => "insecure out-of-order baseline (Table 3)",
            Variant::Permissive => "NDA permissive propagation (Table 2 row 1)",
            Variant::PermissiveBr => "permissive + bypass restriction (row 2)",
            Variant::Strict => "NDA strict propagation (row 3)",
            Variant::StrictBr => "strict + bypass restriction (row 4)",
            Variant::RestrictedLoads => "NDA load restriction (row 5)",
            Variant::FullProtection => "strict + BR + load restriction (row 6)",
            Variant::InOrder => "blocking in-order baseline",
            Variant::InvisiSpecSpectre => "InvisiSpec, control-speculation model",
            Variant::InvisiSpecFuture => "InvisiSpec, futuristic model",
            Variant::DelayOnMiss => "delay-on-miss (related work)",
            Variant::SttSpectre => "STT taint tracking, Spectre threat model",
            Variant::SttFuturistic => "STT taint tracking, futuristic threat model",
            Variant::ShadowBindingEager => "ShadowBinding, eager (flash) untaint",
            Variant::ShadowBindingLazy => "ShadowBinding, lazy (commit-time) untaint",
        };
        println!("{:<22}{desc}", v.name());
    }
}

fn cmd_workloads() {
    println!("{:<14}behaviour", "name");
    for w in all() {
        println!("{:<14}{}", w.name, w.behaviour);
    }
}

fn cmd_attacks() {
    println!("{:<20}{:<18}channel", "name", "class");
    for k in AttackKind::all() {
        let class = if k.is_chosen_code() {
            "chosen-code"
        } else {
            "control-steering"
        };
        let channel = match k {
            AttackKind::SpectreV1Btb => "BTB",
            AttackKind::NetspectreFpu => "FPU power state",
            AttackKind::Smother => "execution ports",
            _ => "d-cache",
        };
        println!("{:<20}{:<18}{channel}", k.name(), class);
    }
}

/// Eager checkpoint-store GC (`--checkpoint-gc`): trim the store to
/// `--ckpt-max-bytes` before the command runs, so a shrunken cap takes
/// effect immediately instead of at the next save.
fn run_checkpoint_gc(o: &Opts) -> Result<(), String> {
    let dir = o
        .ckpt_dir
        .as_ref()
        .ok_or("--checkpoint-gc needs --checkpoint-dir (or NDA_CKPT_DIR)")?;
    let cap = o
        .ckpt_max_bytes
        .ok_or("--checkpoint-gc needs --ckpt-max-bytes (or NDA_CKPT_MAX_BYTES)")?;
    let store = nda::CheckpointStore::open(std::path::Path::new(dir))
        .map_err(|e| format!("checkpoint store {dir}: {e}"))?;
    let gc = store.gc(cap).map_err(|e| format!("checkpoint gc: {e}"))?;
    eprintln!(
        "checkpoint gc: scanned {} entr{}, evicted {} ({} bytes), {} bytes live",
        gc.scanned,
        if gc.scanned == 1 { "y" } else { "ies" },
        gc.evicted,
        gc.evicted_bytes,
        gc.live_bytes
    );
    Ok(())
}

fn cmd_run_sampled(
    w: &nda::workloads::Workload,
    prog: &nda::Program,
    o: &Opts,
) -> Result<(), String> {
    use nda::{
        collect_checkpoints_cached, run_sampled, run_sampled_with, CheckpointStore, SampledParams,
        SimConfig,
    };
    let params = SampledParams::new(o.sample_every, o.warm, o.detail);
    let store = o.ckpt_dir.as_ref().and_then(|dir| {
        CheckpointStore::open(std::path::Path::new(dir))
            .map_err(|e| eprintln!("warning: checkpoint store at {dir} disabled: {e}"))
            .ok()
            .map(|s| s.with_max_bytes(o.ckpt_max_bytes))
    });
    let cfg = SimConfig::for_variant(o.variant);
    let (r, warm_hit) = match &store {
        Some(store) => {
            let start = std::time::Instant::now();
            let (set, warm) =
                collect_checkpoints_cached(Some(store), &cfg, prog, params, MAX_CYCLES)
                    .map_err(|e| e.to_string())?;
            let ff_wall_ns = start.elapsed().as_nanos() as u64;
            let detail_start = std::time::Instant::now();
            let mut r = run_sampled_with(cfg, prog, &set, params).map_err(|e| e.to_string())?;
            let detail_wall_ns = detail_start.elapsed().as_nanos() as u64;
            if let Some(s) = &mut r.sampled {
                s.ff_wall_ns = ff_wall_ns;
                s.detail_wall_ns = detail_wall_ns;
            }
            r.host_ns = start.elapsed().as_nanos() as u64;
            (r, warm)
        }
        None => (
            run_sampled(cfg, prog, params, MAX_CYCLES).map_err(|e| e.to_string())?,
            false,
        ),
    };
    println!(
        "workload {} on {} (seed {}, {} iters), sampled every {} insts (warm {}, detail {})",
        w.name,
        o.variant.name(),
        o.seed,
        o.iters,
        o.sample_every,
        o.warm,
        o.detail
    );
    let Some(info) = r.sampled else {
        println!("  program too short to sample; ran full detail");
        println!("  cycles               {:>12}", r.stats.cycles);
        println!("  instructions         {:>12}", r.stats.committed_insts);
        println!("  CPI                  {:>12.3}", r.cpi());
        return Ok(());
    };
    println!("  instructions         {:>12}", r.stats.committed_insts);
    println!("  detailed windows     {:>12}", info.windows);
    println!(
        "  detailed insts       {:>12}   ({:.1}% of stream)",
        info.detailed_insts,
        100.0 * info.detailed_insts as f64 / info.fast_forwarded_insts.max(1) as f64
    );
    println!(
        "  sampled CPI          {:>12.3} ± {:.3}   (rel err {:.2}%)",
        info.cpi.mean,
        info.cpi.ci95,
        100.0 * info.cpi.relative_error()
    );
    println!("  est. cycles          {:>12}", r.stats.cycles);
    println!("  host time            {:>12.3}s", r.host_seconds());
    if store.is_some() {
        println!(
            "  checkpoint store     {:>12}   (fast-forward {:.3}s, detail {:.3}s)",
            if warm_hit { "warm hit" } else { "cold miss" },
            info.ff_wall_ns as f64 / 1e9,
            info.detail_wall_ns as f64 / 1e9,
        );
    }
    Ok(())
}

/// Run a program on an OoO variant while streaming pipeline events into
/// the selected exporter; the trace file is written even when the run
/// itself errors out (the partial trace is exactly what one wants then).
fn run_traced(
    cfg: nda::SimConfig,
    prog: &nda::Program,
    path: &str,
    format: nda::trace::TraceFormat,
) -> Result<nda::core::RunResult, String> {
    use nda::core::OooCore;
    use nda::trace::{KonataSink, PerfettoSink, TraceFormat};
    let mut core = OooCore::new(cfg, prog);
    let (run, payload) = match format {
        TraceFormat::Perfetto => {
            let mut sink = PerfettoSink::new();
            let run = core.run_with_sink(MAX_CYCLES, &mut sink);
            (run, sink.into_json())
        }
        TraceFormat::Konata => {
            let mut sink = KonataSink::new();
            let run = core.run_with_sink(MAX_CYCLES, &mut sink);
            (run, sink.into_log())
        }
    };
    std::fs::write(path, &payload).map_err(|e| format!("write {path}: {e}"))?;
    eprintln!(
        "wrote {} bytes of {format:?} trace to {path}",
        payload.len()
    );
    run.map_err(|e| e.to_string())
}

fn cmd_run(name: &str, o: &Opts) -> Result<(), String> {
    if o.checkpoint_gc {
        run_checkpoint_gc(o)?;
    }
    let w = by_name(name).ok_or(format!("unknown workload {name:?} (see `workloads`)"))?;
    let prog = (w.build)(&WorkloadParams {
        seed: o.seed,
        iters: o.iters,
    });
    if o.sample_every > 0 {
        if o.trace_out.is_some() || o.metrics_out.is_some() {
            return Err(
                "--trace-out/--metrics-out need a full-detail run (drop --sample-every)".into(),
            );
        }
        return cmd_run_sampled(w, &prog, o);
    }
    let r = match &o.trace_out {
        Some(path) => {
            if o.variant == Variant::InOrder {
                return Err("tracing needs an out-of-order variant".into());
            }
            run_traced(
                nda::SimConfig::for_variant(o.variant),
                &prog,
                path,
                o.trace_format,
            )?
        }
        None => run_variant(o.variant, &prog, MAX_CYCLES).map_err(|e| e.to_string())?,
    };
    if let Some(path) = &o.metrics_out {
        let json = r.metrics().to_json();
        std::fs::write(path, &json).map_err(|e| format!("write {path}: {e}"))?;
        eprintln!("wrote metrics document to {path}");
    }
    let s = r.stats;
    println!(
        "workload {} on {} (seed {}, {} iters)",
        w.name,
        o.variant.name(),
        o.seed,
        o.iters
    );
    println!("  cycles               {:>12}", s.cycles);
    println!("  instructions         {:>12}", s.committed_insts);
    println!("  CPI                  {:>12.3}", s.cpi());
    println!(
        "  loads/stores/branches{:>12} / {} / {}",
        s.committed_loads, s.committed_stores, s.committed_branches
    );
    println!("  branch mispredicts   {:>12}", s.branch_mispredicts);
    println!("  squashes             {:>12}", s.squashes);
    println!("  wrong-path executed  {:>12}", s.wrong_path_executed);
    println!("  deferred broadcasts  {:>12}", s.deferred_broadcasts);
    println!("  dispatch->issue      {:>12.2}", s.avg_dispatch_to_issue());
    println!("  ILP                  {:>12.3}", s.ilp());
    let (c, m, b, f) = s.cycle_breakdown();
    println!(
        "  cycle mix            commit {c:.2} / mem {m:.2} / backend {b:.2} / frontend {f:.2}"
    );
    println!("  CPI stack (cycles, share of total):");
    for (class, cycles) in s.cpi_stack.entries() {
        if cycles == 0 {
            continue;
        }
        println!(
            "    {:<18}{:>12}   {:>6.2}%",
            class.name(),
            cycles,
            100.0 * cycles as f64 / s.cycles.max(1) as f64
        );
    }
    println!(
        "  L1D {}h/{}m  L2 {}h/{}m  DRAM {}  MLP {}",
        r.mem_stats.l1d.hits,
        r.mem_stats.l1d.misses,
        r.mem_stats.l2.hits,
        r.mem_stats.l2.misses,
        r.mem_stats.dram_accesses,
        r.mem_stats
            .mlp
            .map(|m| format!("{m:.2}"))
            .unwrap_or_else(|| "-".into()),
    );
    println!("  host time            {:>12.3}s", r.host_seconds());
    if let (Some(cps), Some(mips)) = (r.sim_cycles_per_host_sec(), r.committed_mips()) {
        println!("  sim cycles/host s    {:>12.0}", cps);
        println!("  committed MIPS       {:>12.3}", mips);
    }
    Ok(())
}

fn cmd_attack(name: &str, o: &Opts) -> Result<(), String> {
    let k = parse_attack(name).ok_or(format!("unknown attack {name:?} (see `attacks`)"))?;
    let out = run_attack(k, o.variant, o.secret);
    println!(
        "{} on {} (secret {:#04x})",
        k.name(),
        o.variant.name(),
        o.secret
    );
    println!("  leaked     {}", out.leaked);
    println!(
        "  recovered  {:?}",
        out.recovered.map(|b| format!("{b:#04x}"))
    );
    println!("  separation {} cycles", out.separation);
    println!(
        "  expected   {}",
        if k.expected_blocked(o.variant) {
            "blocked"
        } else {
            "leak"
        }
    );
    Ok(())
}

fn cmd_matrix(o: &Opts) {
    print!("{:<20}", "variant");
    for k in AttackKind::all() {
        print!("{:>20}", k.name());
    }
    println!();
    for v in Variant::all() {
        print!("{:<20}", v.name());
        for k in AttackKind::all() {
            let out = run_attack(k, v, o.secret);
            print!("{:>20}", if out.leaked { "LEAK" } else { "blocked" });
        }
        println!();
    }
}

fn cmd_sweep(o: &Opts) -> Result<(), String> {
    use nda::bench::{
        metrics_document, silence_contained_panics, sweep_journaled, sweep_meta, sweep_table,
        Chaos, Journal, SweepConfig, SweepMode,
    };
    use nda::SampledParams;
    if o.checkpoint_gc {
        run_checkpoint_gc(o)?;
    }
    if let Some(passes) = &o.mitigate {
        return cmd_sweep_mitigate(passes, o);
    }
    // Contained panics (injected or real) are reported as FAILED cells;
    // keep the default panic banner from spamming the table.
    silence_contained_panics();
    let cfg = SweepConfig {
        samples: o.samples,
        iters: o.iters,
        jobs: o.jobs.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        }),
        mode: if o.sample_every > 0 {
            SweepMode::Sampled(SampledParams::new(o.sample_every, o.warm, o.detail))
        } else {
            SweepMode::Full
        },
        seed: o.seed,
        retries: o.retries,
        backoff_ms: 10,
        deadline_cycles: o.deadline_cycles,
        chaos: (o.chaos_panic > 0 || o.chaos_slow > 0).then_some(Chaos {
            seed: o.chaos_seed,
            panic_pct: o.chaos_panic,
            slow_pct: o.chaos_slow,
            target: None,
        }),
        ckpt_dir: o.ckpt_dir.as_ref().map(std::path::PathBuf::from),
        ckpt_max_bytes: o.ckpt_max_bytes,
    };
    let workloads = all();
    let variants = Variant::all();
    let journal = match &o.journal {
        Some(dir) => {
            let meta = sweep_meta(workloads, &variants, &cfg);
            let (j, state) = Journal::open(std::path::Path::new(dir), &meta)
                .map_err(|e| format!("journal {dir}: {e}"))?;
            for q in &state.quarantined {
                eprintln!("journal: quarantined corrupt record {}", q.display());
            }
            if !state.ok.is_empty() || !state.failed.is_empty() {
                eprintln!(
                    "journal: resuming — {} cell sample(s) done, {} failed (will re-run)",
                    state.ok.len(),
                    state.failed.len()
                );
            }
            Some((j, state))
        }
        None => None,
    };
    if o.sample_every > 0 {
        println!(
            "normalised CPI, {} samples x {} iters per cell, sampled every {} insts",
            o.samples, o.iters, o.sample_every
        );
    } else {
        println!(
            "normalised CPI, {} samples x {} iters per cell",
            o.samples, o.iters
        );
    }
    let r = sweep_journaled(
        workloads,
        &variants,
        cfg,
        journal.as_ref().map(|(j, s)| (j, s)),
    );
    print!("{}", sweep_table(&r));
    let degraded = r.degraded();
    if !degraded.is_empty() {
        eprintln!(
            "warning: {} of {} cells degraded (marked in the table above){}",
            degraded.len(),
            workloads.len() * variants.len(),
            if o.journal.is_some() {
                "; re-run with the same --journal to retry them"
            } else {
                ""
            }
        );
    }
    if let Some(path) = &o.metrics_out {
        let doc = metrics_document(&r, o.samples, o.iters, o.seed, o.sample_every);
        std::fs::write(path, &doc).map_err(|e| format!("write {path}: {e}"))?;
        eprintln!("wrote per-variant metrics document to {path}");
    }
    Ok(())
}

/// `sweep --mitigate <passes>`: the software-mitigation axis. Harden
/// every workload under blanket secret labeling, then price hardware NDA
/// vs software rewriting vs both across all variants, Fig-7 style.
fn cmd_sweep_mitigate(passes: &str, o: &Opts) -> Result<(), String> {
    use nda::analyze::PassSet;
    use nda::bench::{mitigation_sweep, mitigation_table, MitigationConfig};
    let passes = PassSet::parse(passes).map_err(|e| format!("--mitigate: {e}"))?;
    let cfg = MitigationConfig {
        passes,
        samples: o.samples,
        iters: o.iters,
        seed: o.seed,
        jobs: o.jobs.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        }),
        max_cycles: o.deadline_cycles,
    };
    println!(
        "mitigation sweep, {} samples x {} iters per cell",
        o.samples, o.iters
    );
    let r = mitigation_sweep(all(), &Variant::all(), &cfg);
    print!("{}", mitigation_table(&r, &passes));
    Ok(())
}

fn cmd_save(name: &str, path: &str, o: &Opts) -> Result<(), String> {
    let w = by_name(name).ok_or(format!("unknown workload {name:?}"))?;
    let prog = (w.build)(&WorkloadParams {
        seed: o.seed,
        iters: o.iters,
    });
    let bytes = nda::isa::encode_program(&prog);
    std::fs::write(path, &bytes).map_err(|e| format!("write {path}: {e}"))?;
    println!(
        "wrote {} instructions ({} bytes) to {path}",
        prog.insts.len(),
        bytes.len()
    );
    Ok(())
}

fn cmd_exec(path: &str, o: &Opts) -> Result<(), String> {
    let bytes = std::fs::read(path).map_err(|e| format!("read {path}: {e}"))?;
    let prog = nda::isa::decode_program(&bytes).map_err(|e| format!("decode {path}: {e}"))?;
    let r = nda::core::run_variant(o.variant, &prog, MAX_CYCLES).map_err(|e| e.to_string())?;
    println!(
        "{path} on {}: {} cycles, {} instructions, CPI {:.3}",
        o.variant.name(),
        r.stats.cycles,
        r.stats.committed_insts,
        r.cpi()
    );
    Ok(())
}

fn cmd_trace(name: &str, o: &Opts) -> Result<(), String> {
    use nda::core::{render_pipeline, OooCore};
    let k = parse_attack(name).ok_or(format!("unknown attack {name:?}"))?;
    let mut cfg = nda::core::config::SimConfig::for_variant(o.variant);
    k.tweak_config(&mut cfg);
    let program = k.program(o.secret);
    let mut core = OooCore::new(cfg, &program);
    core.enable_trace();
    // Run until the first squash (the first speculation window collapsing),
    // then a little further so the recovery is visible. With --trace-out
    // the run continues to completion so the exported file covers the
    // whole attack, not just the window rendered below.
    let mut first_squash = None;
    for _ in 0..500_000 {
        core.step_cycle();
        if core.halted() {
            break;
        }
        if first_squash.is_none() && core.stats.squashes > 0 {
            first_squash = Some(core.cycle());
        }
        if let Some(t) = first_squash {
            if o.trace_out.is_none() && core.cycle() > t + 60 {
                break;
            }
        }
    }
    let Some(t) = first_squash else {
        return Err("no squash observed (nothing to trace)".into());
    };
    println!(
        "{} on {}: first speculation window (squash at cycle {t})",
        k.name(),
        o.variant.name()
    );
    println!(
        "D dispatch, I issue, C complete, B broadcast, R retire, x squash
"
    );
    print!(
        "{}",
        render_pipeline(
            core.trace_events(),
            Some((t.saturating_sub(60), t + 40)),
            48
        )
    );
    if let Some(path) = &o.trace_out {
        use nda::core::EventSink;
        use nda::trace::{KonataSink, PerfettoSink, TraceFormat};
        let payload = match o.trace_format {
            TraceFormat::Perfetto => {
                let mut sink = PerfettoSink::new();
                for ev in core.trace_events() {
                    sink.event(ev);
                }
                sink.finish();
                sink.into_json()
            }
            TraceFormat::Konata => {
                let mut sink = KonataSink::new();
                for ev in core.trace_events() {
                    sink.event(ev);
                }
                sink.finish();
                sink.into_log()
            }
        };
        std::fs::write(path, &payload).map_err(|e| format!("write {path}: {e}"))?;
        eprintln!(
            "wrote {} bytes of {:?} trace to {path}",
            payload.len(),
            o.trace_format
        );
    }
    Ok(())
}

/// Resolve an analysis/hardening target: attack name > workload name >
/// encoded file. Attacks carry their secret labeling; workloads and
/// files get an empty labeling (any finding would be a false positive).
fn resolve_target(
    target: &str,
    o: &Opts,
) -> Result<
    (
        nda::Program,
        nda::isa::SecretSpec,
        Option<AttackKind>,
        String,
    ),
    String,
> {
    if let Some(k) = parse_attack(target) {
        return Ok((
            k.program(o.secret),
            k.secret_spec(),
            Some(k),
            k.name().to_string(),
        ));
    }
    if let Some(w) = by_name(target) {
        let p = (w.build)(&WorkloadParams {
            seed: o.seed,
            iters: o.iters,
        });
        return Ok((p, nda::isa::SecretSpec::empty(), None, w.name.to_string()));
    }
    let bytes = std::fs::read(target)
        .map_err(|_| format!("{target:?} is not an attack, a workload, or a readable file"))?;
    let p = nda::isa::decode_program(&bytes).map_err(|e| format!("decode {target}: {e}"))?;
    Ok((p, nda::isa::SecretSpec::empty(), None, target.to_string()))
}

fn cmd_analyze(target: &str, o: &Opts) -> Result<(), String> {
    use nda::analyze::{analyze, AnalyzeConfig};

    let (prog, spec, kind, what) = resolve_target(target, o)?;

    let mut cfg = AnalyzeConfig::default();
    if let Some(w) = o.window {
        cfg.window = w;
    }
    let report = analyze(&prog, &spec, &cfg);

    if o.json {
        println!("{}", report.to_json());
    } else {
        println!(
            "static analysis of {what} ({} instructions, window {}):",
            report.program_len, report.window
        );
        print!("{}", report.render_human());
    }

    if o.validate {
        let mut base_cfg = nda::SimConfig::for_variant(Variant::Ooo);
        let mut strict_cfg = nda::SimConfig::for_variant(Variant::FullProtection);
        if let Some(k) = kind {
            k.tweak_config(&mut base_cfg);
            k.tweak_config(&mut strict_cfg);
        }
        let outcome =
            nda::verify::validate_report(&prog, &report, &base_cfg, &strict_cfg, MAX_CYCLES);
        println!();
        println!("dynamic validation (Base OoO vs Full Protection):");
        if outcome.verdicts.is_empty() {
            println!("  no gadgets reported; nothing to execute");
        }
        for v in &outcome.verdicts {
            match (v.base.confirm_cycle, v.strict) {
                (Some(c), Some(s)) if !s.confirmed() => println!(
                    "  pc {} -> pc {}: CONFIRMED transient leak on Base at cycle {c}; \
                     suppressed under Full Protection ({} cycles run)",
                    v.source_pc, v.sink_pc, s.cycles_run
                ),
                (Some(c), Some(s)) => println!(
                    "  pc {} -> pc {}: LEAKED UNDER FULL PROTECTION (base cycle {c}, \
                     strict cycle {:?})",
                    v.source_pc, v.sink_pc, s.confirm_cycle
                ),
                _ => println!(
                    "  pc {} -> pc {}: no transient transmission observed on Base \
                     ({} cycles, halted: {})",
                    v.source_pc, v.sink_pc, v.base.cycles_run, v.base.halted
                ),
            }
        }
        if outcome.any_confirmed_under_strict() {
            return Err("a reported gadget leaked under Full Protection".into());
        }
    }
    Ok(())
}

fn cmd_harden(target: &str, o: &Opts) -> Result<(), String> {
    use nda::analyze::{harden, AnalyzeConfig, HardenConfig, PassSet};

    let (prog, spec, kind, what) = resolve_target(target, o)?;
    let passes = PassSet::parse(&o.passes).map_err(|e| format!("--passes: {e}"))?;
    let mut acfg = AnalyzeConfig::default();
    if let Some(w) = o.window {
        acfg.window = w;
    }
    let hcfg = HardenConfig {
        passes,
        analyze: acfg,
        ..HardenConfig::default()
    };
    let out = harden(&prog, &spec, &hcfg);

    if o.json {
        println!("{}", out.report.to_json());
    } else {
        println!(
            "hardening {what} (passes: {}): {} -> {} instructions, {} fix(es) in {} round(s)",
            passes.names(),
            prog.insts.len(),
            out.program.insts.len(),
            out.fixes.len(),
            out.rounds
        );
        for f in &out.fixes {
            println!(
                "  round {}: {} at pc {} (gadget pc {} -> pc {})",
                f.round,
                f.pass.name(),
                f.at,
                f.source_pc,
                f.sink_pc
            );
        }
        for r in &out.residual {
            println!(
                "  RESIDUAL: gadget pc {} -> pc {}: {}",
                r.gadget.source_pc, r.gadget.sink_pc, r.reason
            );
        }
        println!(
            "  re-analysis: {} gadget(s) remain",
            out.report.gadgets.len()
        );
    }

    if let Some(path) = &o.out {
        let bytes = nda::isa::encode_program(&out.program);
        std::fs::write(path, &bytes).map_err(|e| format!("write {path}: {e}"))?;
        eprintln!(
            "wrote {} instructions ({} bytes) to {path}",
            out.program.insts.len(),
            bytes.len()
        );
    }

    if o.validate {
        use nda::verify::{equivalent_modulo_reloc, gadgets_dead_on};
        const MAX_STEPS: u64 = 50_000_000;
        let report = nda::analyze::analyze(&prog, &spec, &hcfg.analyze);
        equivalent_modulo_reloc(&prog, &out.program, &out.map, MAX_STEPS)
            .map_err(|e| format!("hardened program is NOT equivalent: {e}"))?;
        println!();
        println!("architectural equivalence modulo relocation: ok");
        let mut cfg = nda::SimConfig::for_variant(Variant::Ooo);
        if let Some(k) = kind {
            k.tweak_config(&mut cfg);
        }
        let verdicts = gadgets_dead_on(&prog, &out, &report, &spec, &cfg, MAX_CYCLES);
        println!("dynamic gadget death on Base OoO:");
        if verdicts.is_empty() {
            println!("  no gadgets reported against the original; nothing to kill");
        }
        let mut alive = 0;
        for v in &verdicts {
            match (v.original_confirm, v.hardened_confirm) {
                (Some(c), None) => println!(
                    "  pc {} -> pc {}: dead ({:?} check; original confirmed at cycle {c})",
                    v.source_pc, v.sink_pc, v.check
                ),
                (Some(c), Some(h)) => {
                    alive += 1;
                    println!(
                        "  pc {} -> pc {}: STILL ALIVE at cycle {h} ({:?} check; \
                         original cycle {c})",
                        v.source_pc, v.sink_pc, v.check
                    );
                }
                (None, _) => println!(
                    "  pc {} -> pc {}: original never confirmed dynamically; skipped",
                    v.source_pc, v.sink_pc
                ),
            }
        }
        if alive > 0 {
            return Err(format!("{alive} gadget(s) survived hardening"));
        }
    }

    if !out.clean() {
        return Err(format!(
            "{} residual gadget(s) — see report above (try more passes?)",
            out.residual.len()
        ));
    }
    Ok(())
}

fn cmd_serve(o: &Opts) -> Result<(), String> {
    use nda::serve::{ServeConfig, Server};
    let defaults = ServeConfig::default();
    let cfg = ServeConfig {
        shards: o.shards.unwrap_or(defaults.shards),
        jobs: o.jobs.unwrap_or(defaults.jobs),
        deadline_cycles: o.deadline_cycles,
        result_dir: o.result_dir.as_ref().map(std::path::PathBuf::from),
        result_max_bytes: o.result_max_bytes,
        ckpt_dir: o.ckpt_dir.as_ref().map(std::path::PathBuf::from),
        ckpt_max_bytes: o.ckpt_max_bytes,
        ..defaults
    };
    let server = Server::new(cfg).map_err(|e| format!("start server: {e}"))?;
    if o.stdio {
        server
            .serve_stream(
                std::io::BufReader::new(std::io::stdin()),
                std::io::stdout().lock(),
            )
            .map_err(|e| format!("serve stdio: {e}"))?;
        return Ok(());
    }
    let listener =
        std::net::TcpListener::bind(&o.addr).map_err(|e| format!("bind {}: {e}", o.addr))?;
    // Stderr so response-free stdout piping stays clean; the actual
    // port matters when binding :0.
    match listener.local_addr() {
        Ok(a) => eprintln!("nda-serve listening on {a}"),
        Err(_) => eprintln!("nda-serve listening on {}", o.addr),
    }
    server
        .serve_tcp(listener)
        .map_err(|e| format!("serve tcp: {e}"))
}

fn cmd_client(o: &Opts) -> Result<(), String> {
    let text = match &o.input {
        Some(path) => std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?,
        None => std::io::read_to_string(std::io::stdin()).map_err(|e| format!("stdin: {e}"))?,
    };
    let lines: Vec<String> = text.lines().map(String::from).collect();
    let mut out = std::io::stdout().lock();
    let n = nda::serve::client::run_batch(&o.addr, &lines, &mut out)
        .map_err(|e| format!("client {}: {e}", o.addr))?;
    eprintln!("{n} response(s) from {}", o.addr);
    Ok(())
}

fn cmd_verify(o: &Opts) -> Result<(), String> {
    use nda::verify::{run_verify, InjectKind, VerifyConfig};
    let kinds = if o.inject == "none" {
        Vec::new()
    } else {
        InjectKind::parse_list(&o.inject)?
    };
    let cfg = VerifyConfig::new(o.seed, o.iters, &kinds);
    println!(
        "differential verify: {} programs from seed {}, injecting [{}] across all variants",
        o.iters,
        o.seed,
        kinds
            .iter()
            .map(|k| k.to_string())
            .collect::<Vec<_>>()
            .join(", "),
    );
    let report = run_verify(&cfg, |done, bad| {
        if done % 25 == 0 || done == o.iters {
            println!("  {done}/{} programs checked, {bad} mismatch(es)", o.iters);
        }
    });
    for m in &report.mismatches {
        println!("MISMATCH: {m}");
    }
    if report.ok() {
        println!(
            "ok: {} programs x {} variants, zero architectural mismatches",
            report.iters, report.variants
        );
        Ok(())
    } else {
        Err(format!(
            "{} architectural mismatch(es)",
            report.mismatches.len()
        ))
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first().map(String::as_str) else {
        eprintln!(
            "usage: nda-sim <variants|workloads|attacks|run|attack|matrix|sweep|save|exec|trace|verify|analyze|harden|serve|client> [options]"
        );
        eprintln!("(see the module docs at the top of src/bin/nda-sim.rs)");
        return ExitCode::FAILURE;
    };
    let result: Result<(), String> = match cmd {
        "variants" => {
            cmd_variants();
            Ok(())
        }
        "workloads" => {
            cmd_workloads();
            Ok(())
        }
        "attacks" => {
            cmd_attacks();
            Ok(())
        }
        "run" => match args.get(1) {
            Some(name) => parse_opts(&args[2..]).and_then(|o| cmd_run(name, &o)),
            None => Err("run needs a workload name".into()),
        },
        "attack" => match args.get(1) {
            Some(name) => parse_opts(&args[2..]).and_then(|o| cmd_attack(name, &o)),
            None => Err("attack needs an attack name".into()),
        },
        "save" => match (args.get(1), args.get(2)) {
            (Some(name), Some(path)) => {
                parse_opts(&args[3..]).and_then(|o| cmd_save(name, path, &o))
            }
            _ => Err("save needs a workload name and a file path".into()),
        },
        "exec" => match args.get(1) {
            Some(path) => parse_opts(&args[2..]).and_then(|o| cmd_exec(path, &o)),
            None => Err("exec needs a file path".into()),
        },
        "trace" => match args.get(1) {
            Some(name) => parse_opts(&args[2..]).and_then(|o| cmd_trace(name, &o)),
            None => Err("trace needs an attack name".into()),
        },
        "analyze" => match args.get(1) {
            Some(target) => parse_opts(&args[2..]).and_then(|o| cmd_analyze(target, &o)),
            None => Err("analyze needs an attack, workload, or file target".into()),
        },
        "harden" => match args.get(1) {
            Some(target) => parse_opts(&args[2..]).and_then(|o| cmd_harden(target, &o)),
            None => Err("harden needs an attack, workload, or file target".into()),
        },
        "matrix" => parse_opts(&args[1..]).map(|o| cmd_matrix(&o)),
        "sweep" => parse_opts(&args[1..]).and_then(|o| cmd_sweep(&o)),
        "serve" => parse_opts(&args[1..]).and_then(|o| cmd_serve(&o)),
        "client" => parse_opts(&args[1..]).and_then(|o| cmd_client(&o)),
        "verify" => parse_opts(&args[1..]).and_then(|o| cmd_verify(&o)),
        other => Err(format!("unknown command {other:?}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
