//! # nda — a reproduction of *NDA: Preventing Speculative Execution
//! Attacks at Their Source* (MICRO-52, 2019)
//!
//! This umbrella crate re-exports the whole workspace:
//!
//! * [`isa`] — the SpecRISC micro-op ISA, assembler and reference
//!   interpreter (`nda-isa`).
//! * [`mem`] — cache-hierarchy and DRAM timing models (`nda-mem`).
//! * [`predict`] — gshare / BTB / RAS predictors (`nda-predict`).
//! * [`core`] — the out-of-order and in-order CPU models with the six NDA
//!   policies and the InvisiSpec baselines (`nda-core`).
//! * [`stats`] — counters and SMARTS-style sampling (`nda-stats`).
//! * [`workloads`] — the synthetic SPEC CPU 2017-like kernels
//!   (`nda-workloads`).
//! * [`attacks`] — Spectre v1 (cache and BTB channels), SSB, Meltdown and
//!   LazyFP proof-of-concepts with leak detectors (`nda-attacks`).
//! * [`analyze`] — static speculative-leakage analyzer: CFG + abstract
//!   taint interpretation finds access→transmit gadgets and predicts the
//!   per-variant suppression verdicts (`nda-analyze`).
//! * [`verify`] — the fault-injection differential harness: random
//!   programs under injected squashes/latency/predictor corruption must
//!   stay bit-exact against the reference interpreter (`nda-verify`).
//! * [`bench`] — the fault-isolated sweep harness: panic containment,
//!   retry/deadline budgets, a crash-safe resume journal and seeded
//!   chaos injection (`nda-bench`).
//! * [`serve`] — the long-running simulation server: sharded worker
//!   pools, in-flight request dedup and content-addressed result
//!   caching over a line-delimited JSON protocol (`nda-serve`).
//!
//! The most common entry points are re-exported at the crate root:
//!
//! ```
//! use nda::{run_variant, Variant, Asm, Reg};
//!
//! let mut asm = Asm::new();
//! asm.li(Reg::X2, 2).li(Reg::X3, 40).add(Reg::X4, Reg::X2, Reg::X3).halt();
//! let prog = asm.assemble()?;
//! for v in Variant::all() {
//!     let r = run_variant(v, &prog, 1_000_000)?;
//!     assert_eq!(r.regs[4], 42); // timing differs, architecture never does
//! }
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]

pub use nda_analyze as analyze;
pub use nda_attacks as attacks;
pub use nda_bench as bench;
pub use nda_core as core;
pub use nda_isa as isa;
pub use nda_mem as mem;
pub use nda_predict as predict;
pub use nda_serve as serve;
pub use nda_stats as stats;
pub use nda_trace as trace;
pub use nda_verify as verify;
pub use nda_workloads as workloads;

pub use nda_core::{
    collect_checkpoints_cached, run_sampled, run_sampled_with, run_variant, run_with_config,
    CheckpointStore, RunResult, SampledParams, SimConfig, SimError, Variant,
};
pub use nda_isa::{Asm, Inst, Interp, Program, Reg};
