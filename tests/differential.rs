//! The master correctness invariant: NDA changes *time*, never
//! *architecture*.
//!
//! Random structured programs (loops, data-dependent branches, aliasing
//! stores/loads, calls, indirect jumps, fences) must produce identical
//! final architectural state — registers, memory digest, retired count —
//! on the reference interpreter, the in-order core, the insecure
//! out-of-order core, all six NDA policies and both InvisiSpec variants.

use nda_core::{run_variant, Variant};
use nda_isa::genprog::{generate, GenConfig, SCRATCH_BASE};
use nda_isa::{Interp, Program};

const MAX_STEPS: u64 = 2_000_000;
const MAX_CYCLES: u64 = 20_000_000;

/// Digest of architectural state after a run: registers + scratch memory.
#[derive(Debug, PartialEq, Eq, Clone)]
struct ArchState {
    regs: [u64; 32],
    scratch: Vec<u64>,
    retired: u64,
}

fn interp_state(program: &Program) -> ArchState {
    let mut i = Interp::new(program);
    let exit = i.run(MAX_STEPS).expect("interpreter run");
    let scratch = (0..64)
        .map(|k| i.mem.read(SCRATCH_BASE + 8 * k, 8))
        .collect();
    ArchState {
        regs: *i.regs(),
        scratch,
        retired: exit.retired,
    }
}

fn variant_state(v: Variant, program: &Program) -> ArchState {
    // RdCycle reads differ between models by design; genprog never emits
    // them, so the digest is comparable.
    let r = run_variant(v, program, MAX_CYCLES).unwrap_or_else(|e| panic!("{v}: {e}"));
    assert!(r.halted, "{v}: did not halt");
    ArchState {
        regs: r.regs,
        scratch: Vec::new(),
        retired: r.stats.committed_insts,
    }
}

/// Memory digest needs access to the core's memory; run again through the
/// concrete core types to read it.
fn variant_state_with_mem(v: Variant, program: &Program) -> ArchState {
    use nda_core::config::{CoreModel, SimConfig};
    let cfg = SimConfig::for_variant(v);
    match cfg.model {
        CoreModel::OutOfOrder => {
            let mut c = nda_core::OooCore::new(cfg, program);
            let r = c.run(MAX_CYCLES).unwrap_or_else(|e| panic!("{v}: {e}"));
            let scratch = (0..64)
                .map(|k| c.mem.read(SCRATCH_BASE + 8 * k, 8))
                .collect();
            ArchState {
                regs: r.regs,
                scratch,
                retired: r.stats.committed_insts,
            }
        }
        CoreModel::InOrder => {
            let mut c = nda_core::InOrderCore::new(cfg, program);
            let r = c.run(MAX_CYCLES).unwrap_or_else(|e| panic!("{v}: {e}"));
            let scratch = (0..64)
                .map(|k| c.mem.read(SCRATCH_BASE + 8 * k, 8))
                .collect();
            ArchState {
                regs: r.regs,
                scratch,
                retired: r.stats.committed_insts,
            }
        }
    }
}

fn check_seed(seed: u64, cfg: GenConfig) {
    let program = generate(seed, cfg);
    let oracle = interp_state(&program);
    for v in Variant::all() {
        let got = variant_state_with_mem(v, &program);
        assert_eq!(
            got.regs, oracle.regs,
            "seed {seed}, {v}: register divergence"
        );
        assert_eq!(
            got.scratch, oracle.scratch,
            "seed {seed}, {v}: memory divergence"
        );
        assert_eq!(
            got.retired, oracle.retired,
            "seed {seed}, {v}: retired-count divergence"
        );
    }
    // And the lightweight path agrees with itself.
    let a = variant_state(Variant::Ooo, &program);
    assert_eq!(a.regs, oracle.regs);
}

#[test]
fn differential_small_programs() {
    for seed in 0..12 {
        check_seed(
            seed,
            GenConfig {
                target_len: 120,
                max_depth: 2,
                indirect: true,
                fences: true,
                msrs: true,
            },
        );
    }
}

#[test]
fn differential_medium_programs() {
    for seed in 100..106 {
        check_seed(seed, GenConfig::default());
    }
}

#[test]
fn differential_without_indirection() {
    for seed in 200..206 {
        check_seed(
            seed,
            GenConfig {
                target_len: 250,
                max_depth: 3,
                indirect: false,
                fences: false,
                msrs: true,
            },
        );
    }
}

#[test]
fn differential_deeply_nested() {
    for seed in 300..304 {
        check_seed(
            seed,
            GenConfig {
                target_len: 350,
                max_depth: 4,
                indirect: true,
                fences: true,
                msrs: true,
            },
        );
    }
}
