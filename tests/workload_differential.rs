//! Every synthetic SPEC-like kernel must run identically — registers,
//! checksum, retired count — on the reference interpreter and every
//! evaluated core variant. This covers code patterns the random generator
//! does not reach (software stacks, interpreter dispatch, SAD loops).

use nda_core::{run_variant, Variant};
use nda_isa::Interp;
use nda_workloads::{all, WorkloadParams, CHECKSUM_ADDR};

const MAX_CYCLES: u64 = 50_000_000;

#[test]
fn kernels_match_interpreter_on_every_variant() {
    let params = WorkloadParams {
        seed: 11,
        iters: 12,
    };
    for w in all() {
        let p = (w.build)(&params);
        let mut oracle = Interp::new(&p);
        let exit = oracle
            .run(MAX_CYCLES)
            .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        let want_sum = oracle.mem.read(CHECKSUM_ADDR, 8);
        let want_regs = *oracle.regs();

        for v in Variant::all() {
            let r =
                run_variant(v, &p, MAX_CYCLES).unwrap_or_else(|e| panic!("{}/{v}: {e}", w.name));
            assert!(r.halted, "{}/{v}", w.name);
            assert_eq!(r.regs, want_regs, "{}/{v}: register divergence", w.name);
            assert_eq!(
                r.stats.committed_insts, exit.retired,
                "{}/{v}: retired-count divergence",
                w.name
            );
            let _ = want_sum; // checksum equality implied by registers + ACC store
        }
    }
}

#[test]
fn protected_variants_are_never_faster_than_insecure_ooo() {
    let params = WorkloadParams { seed: 3, iters: 10 };
    for w in all() {
        let p = (w.build)(&params);
        let base = run_variant(Variant::Ooo, &p, MAX_CYCLES)
            .unwrap()
            .stats
            .cycles;
        for v in [
            Variant::Permissive,
            Variant::PermissiveBr,
            Variant::Strict,
            Variant::StrictBr,
            Variant::RestrictedLoads,
            Variant::FullProtection,
        ] {
            let c = run_variant(v, &p, MAX_CYCLES).unwrap().stats.cycles;
            // Small inversions (a few %) are legitimate: delayed wake-ups
            // perturb wrong-path cache pollution and predictor history.
            assert!(
                c as f64 >= base as f64 * 0.97,
                "{}/{v}: protected variant much faster than OoO ({c} < {base})",
                w.name
            );
        }
        let inorder = run_variant(Variant::InOrder, &p, MAX_CYCLES)
            .unwrap()
            .stats
            .cycles;
        assert!(
            inorder > base,
            "{}: in-order must be slower than OoO",
            w.name
        );
    }
}
