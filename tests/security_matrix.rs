//! The paper's security claims (Tables 1-2), verified end to end:
//! every attack PoC is run on every evaluated core variant, and the
//! leak/blocked outcome must match the ground-truth matrix encoded in
//! `AttackKind::expected_blocked`.
//!
//! In particular:
//! * insecure OoO leaks through both the cache and the BTB;
//! * InvisiSpec blocks the cache channel but **not** the BTB channel
//!   (the paper's central argument for NDA);
//! * permissive/strict propagation block all control-steering attacks;
//! * only Bypass Restriction stops Spectre v4;
//! * only load restriction stops Meltdown/LazyFP;
//! * in-order and full protection block everything.

use nda_attacks::{run_attack, AttackKind};
use nda_core::Variant;

const SECRET: u8 = 42;

fn check(kind: AttackKind, variant: Variant) {
    let outcome = run_attack(kind, variant, SECRET);
    let expected_blocked = kind.expected_blocked(variant);
    assert_eq!(
        !outcome.leaked,
        expected_blocked,
        "{kind} on {variant}: expected {}, but got leaked={} (recovered={:?}, separation={})",
        if expected_blocked { "BLOCKED" } else { "LEAK" },
        outcome.leaked,
        outcome.recovered,
        outcome.separation,
    );
    if outcome.leaked {
        assert_eq!(
            outcome.recovered,
            Some(SECRET),
            "{kind} on {variant}: wrong byte"
        );
    }
}

#[test]
fn spectre_v1_cache_matrix() {
    for v in Variant::all() {
        check(AttackKind::SpectreV1Cache, v);
    }
}

#[test]
fn spectre_v1_btb_matrix() {
    for v in Variant::all() {
        check(AttackKind::SpectreV1Btb, v);
    }
}

#[test]
fn ssb_matrix() {
    for v in Variant::all() {
        check(AttackKind::Ssb, v);
    }
}

#[test]
fn meltdown_matrix() {
    for v in Variant::all() {
        check(AttackKind::Meltdown, v);
    }
}

#[test]
fn lazyfp_matrix() {
    for v in Variant::all() {
        check(AttackKind::LazyFp, v);
    }
}

#[test]
fn spectre_v2_gpr_matrix() {
    // The GPR threat model of paper §4.2: permissive propagation and load
    // restriction leak (the transmit is pure arithmetic), strict blocks.
    for v in Variant::all() {
        check(AttackKind::SpectreV2Gpr, v);
    }
}

#[test]
fn ret2spec_matrix() {
    for v in Variant::all() {
        check(AttackKind::Ret2spec, v);
    }
}

#[test]
fn netspectre_fpu_matrix() {
    // The FPU power-state channel: no cache involvement at all, so every
    // cache-centric defense (InvisiSpec, delay-on-miss) leaks; NDA blocks.
    for v in Variant::all() {
        check(AttackKind::NetspectreFpu, v);
    }
}

#[test]
fn smother_port_contention_matrix() {
    // SMoTherSpectre: divider-occupancy channel — the same profile as the
    // FPU channel: every cache-centric defense leaks, NDA blocks.
    for v in Variant::all() {
        check(AttackKind::Smother, v);
    }
}

#[test]
fn listing4_window_blocks_gpr_attack_everywhere() {
    // Paper §8: the victim wraps its secret window in SpecOff/SpecOn.
    // The steering gadget can then never execute, even on insecure OoO.
    use nda_attacks::{analyze, spectre_v2_gpr, RESULTS_BASE};
    use nda_core::config::SimConfig;
    use nda_core::OooCore;
    let program = spectre_v2_gpr::hardened_program(SECRET);
    for v in [Variant::Ooo, Variant::Permissive, Variant::RestrictedLoads] {
        let mut c = OooCore::new(SimConfig::for_variant(v), &program);
        c.run(nda_attacks::ATTACK_MAX_CYCLES).unwrap();
        let t: Vec<u64> = (0..256)
            .map(|g| c.mem.read(RESULTS_BASE + 8 * g, 8))
            .collect();
        let o = analyze(&t, SECRET, AttackKind::SpectreV2Gpr.margin(), &[200]);
        assert!(
            !o.leaked,
            "{v}: Listing-4 window failed (recovered {:?})",
            o.recovered
        );
    }
}

#[test]
fn multiple_secrets_recovered_exactly_on_insecure_ooo() {
    for secret in [1u8, 7, 42, 99, 177, 254] {
        let o = run_attack(AttackKind::SpectreV1Cache, Variant::Ooo, secret);
        assert!(o.leaked, "secret {secret} not leaked");
        assert_eq!(o.recovered, Some(secret));
    }
}

#[test]
fn bitwise_channels_recover_multiple_secrets() {
    // The per-bit channels must track arbitrary bit patterns, not just
    // the alternating test byte (all-zero/all-one bytes are inherently
    // ambiguous for a differential bit channel, so they are excluded).
    for secret in [0b0010_1010u8, 0b1100_0011, 0b1000_0001] {
        for kind in [AttackKind::NetspectreFpu, AttackKind::Smother] {
            let o = run_attack(kind, Variant::Ooo, secret);
            assert!(o.leaked, "{kind}: secret {secret:#010b} not recovered");
            assert_eq!(o.recovered, Some(secret), "{kind}");
        }
    }
}

#[test]
fn meltdown_flaw_knob_closes_the_leak() {
    // Ablation: with the implementation flaw fixed (no data forwarding
    // from faulting loads), Meltdown dies even on the insecure OoO.
    use nda_core::config::SimConfig;
    use nda_core::OooCore;
    let mut cfg = SimConfig::ooo();
    cfg.core.meltdown_flaw = false;
    let program = AttackKind::Meltdown.program(SECRET);
    let mut c = OooCore::new(cfg, &program);
    c.run(nda_attacks::ATTACK_MAX_CYCLES).unwrap();
    let timings: Vec<u64> = (0..256)
        .map(|g| c.mem.read(nda_attacks::RESULTS_BASE + 8 * g, 8))
        .collect();
    let o = nda_attacks::analyze(&timings, SECRET, AttackKind::Meltdown.margin(), &[]);
    assert!(
        !o.leaked,
        "fixed hardware must not leak (got {:?})",
        o.recovered
    );
}
