//! Property tests for the mitigation synthesizer.
//!
//! Two invariants beyond the attack-suite proofs in
//! `nda-verify/tests/harden_attacks.rs`:
//!
//! 1. **Round-trip stability**: a hardened program survives
//!    encode/decode bit-identically — the rewriter only ever emits
//!    encodable instructions, and the binary format loses nothing.
//! 2. **Workload transparency**: hardening every benign workload under
//!    *blanket* secret labeling (all of memory secret — the labeling the
//!    `sweep --mitigate` axis uses, which forces fences onto real
//!    kernels) commits exactly the same architectural state as the
//!    original, modulo code-pointer relocation.

use nda::analyze::{harden, HardenConfig, PassSet};
use nda::isa::genprog::{generate, GenConfig};
use nda::isa::{decode_program, encode_program, SecretSpec};
use nda::verify::equivalent_modulo_reloc;
use nda::workloads::{all, WorkloadParams};
use proptest::prelude::*;

fn blanket() -> SecretSpec {
    SecretSpec::empty().with_range(0, u64::MAX)
}

fn arb_passes() -> impl Strategy<Value = PassSet> {
    // Non-zero bit patterns: at least one pass enabled. Mask alone is
    // legal (it may just leave residuals, which the round-trip property
    // does not care about).
    (1u8..8).prop_map(|bits| PassSet {
        fence: bits & 1 != 0,
        mask: bits & 2 != 0,
        thunk: bits & 4 != 0,
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Hardening an arbitrary generated program with an arbitrary pass
    /// subset yields a program that (a) round-trips through the binary
    /// codec bit-identically and (b) stays architecturally equivalent to
    /// the original modulo relocation — whether or not the rewrite
    /// converged to zero gadgets.
    #[test]
    fn hardened_programs_round_trip_and_stay_equivalent(
        seed in 0u64..5_000,
        passes in arb_passes(),
    ) {
        let program = generate(seed, GenConfig {
            target_len: 80, max_depth: 2, indirect: true, fences: true, msrs: true,
        });
        let cfg = HardenConfig { passes, ..HardenConfig::default() };
        let out = harden(&program, &blanket(), &cfg);

        let bytes = encode_program(&out.program);
        let decoded = decode_program(&bytes).expect("hardened program must stay encodable");
        prop_assert_eq!(&decoded, &out.program, "decode(encode(hardened)) != hardened");
        prop_assert_eq!(encode_program(&decoded), bytes, "re-encoding is not bit-identical");

        equivalent_modulo_reloc(&program, &out.program, &out.map, 10_000_000)
            .unwrap_or_else(|e| panic!("seed {seed}, passes {}: {e}", passes.names()));
    }
}

/// Every benign workload, hardened under the blanket labeling the
/// mitigation sweep uses, commits the same architectural state as the
/// original. The blanket labeling is what makes this non-vacuous:
/// several kernels pick up real fences/thunks (asserted below), so the
/// rewrite is exercised, not skipped.
#[test]
fn hardened_workloads_commit_identical_state() {
    let mut total_fixes = 0;
    for w in all() {
        let p = (w.build)(&WorkloadParams::test(7));
        let out = harden(&p, &blanket(), &HardenConfig::default());
        total_fixes += out.fixes.len();
        equivalent_modulo_reloc(&p, &out.program, &out.map, 50_000_000)
            .unwrap_or_else(|e| panic!("{}: hardened workload diverged: {e}", w.name));

        let bytes = encode_program(&out.program);
        let decoded = decode_program(&bytes).expect("encodable");
        assert_eq!(decoded, out.program, "{}: codec round-trip", w.name);
    }
    assert!(
        total_fixes > 0,
        "blanket labeling applied no fixes anywhere — the property is vacuous"
    );
}
