//! Differential ordering of the `nda-delay` CPI class across policy
//! strengths.
//!
//! Each NDA policy in the Permissive → Strict+BR → Full Protection chain
//! marks a superset of instructions unsafe, so the cycles the classifier
//! attributes to withheld tag broadcasts can only grow along the chain.
//! The check runs on the Fig 7 workload suite with a few seeded samples
//! per cell and compares means with the 95 % confidence machinery from
//! `nda-stats` — a deterministic simulator has zero within-seed variance,
//! but across seeds the ordering must survive the interval, not just the
//! point estimate.

use nda::core::{run_variant, Variant};
use nda::stats::{CpiClass, Sample};
use nda::workloads::{all, WorkloadParams};

const SAMPLES: u64 = 3;
const ITERS: u64 = 30;

/// Mean ± CI of nda-delay cycles for one (workload, variant) cell.
fn nda_delay_sample(w: &nda::workloads::Workload, v: Variant) -> Sample {
    let values: Vec<f64> = (0..SAMPLES)
        .map(|s| {
            let prog = (w.build)(&WorkloadParams {
                seed: 1 + s,
                iters: ITERS,
            });
            let r = run_variant(v, &prog, 2_000_000_000).expect("halts");
            r.stats.cpi_stack.get(CpiClass::NdaDelay) as f64
        })
        .collect();
    Sample::from_values(&values)
}

#[test]
fn nda_delay_grows_with_policy_strength() {
    let chain = [
        Variant::Permissive,
        Variant::StrictBr,
        Variant::FullProtection,
    ];
    let mut any_nonzero = false;
    for w in all() {
        let samples: Vec<Sample> = chain.iter().map(|&v| nda_delay_sample(w, v)).collect();
        for (weak, strong) in samples.iter().zip(&samples[1..]) {
            // Non-decreasing up to the combined confidence slack: the
            // weaker policy's mean must not exceed the stronger one's by
            // more than their summed interval half-widths.
            let slack = weak.ci95 + strong.ci95 + 1e-9;
            assert!(
                weak.mean <= strong.mean + slack,
                "{}: nda-delay decreased with a stronger policy \
                 (weak {:.1} ± {:.1} vs strong {:.1} ± {:.1})",
                w.name,
                weak.mean,
                weak.ci95,
                strong.mean,
                strong.ci95
            );
        }
        if samples.last().unwrap().mean > 0.0 {
            any_nonzero = true;
        }
    }
    assert!(
        any_nonzero,
        "at least one workload must charge nda-delay under Full Protection \
         (otherwise the ordering is vacuous)"
    );
}
