//! Error-type audit: every public error in the workspace implements
//! `std::error::Error`, renders a non-empty single-purpose `Display` for
//! every variant, and chains its underlying cause through `source()`.
//! Tools that wrap the library (the CLI, the sweep harness, downstream
//! scripts) rely on this contract to print and classify failures without
//! matching on concrete types.

use nda::bench::{JobError, JournalError};
use nda::{SimConfig, SimError};
use nda_core::{InvariantKind, InvariantViolation, OooCore, SmartsInterrupted};
use nda_isa::interp::Fault;
use nda_isa::{Asm, AsmError, DecodeError, InterpError, Reg};
use std::error::Error;

/// Display must be non-empty and single-line-leading (the CLI prints the
/// first line in tables); Debug must be non-empty.
fn audit(e: &dyn Error) -> String {
    let display = e.to_string();
    assert!(!display.trim().is_empty(), "empty Display: {e:?}");
    assert!(
        !display.lines().next().unwrap().trim().is_empty(),
        "empty first Display line: {display:?}"
    );
    assert!(!format!("{e:?}").is_empty());
    display
}

/// A genuine watchdog stall, for variants that carry a pipeline snapshot.
fn stalled_error() -> SimError {
    let mut asm = Asm::new();
    asm.li(Reg::X2, 0x5_0000);
    asm.ld8(Reg::X3, Reg::X2, 0);
    asm.halt();
    let p = asm.assemble().unwrap();
    let mut cfg = SimConfig::ooo();
    cfg.watchdog_window = Some(500);
    let mut core = OooCore::new(cfg, &p);
    core.hier.set_extra_latency(1_000_000);
    core.run(1_000_000).expect_err("watchdog must fire")
}

#[test]
fn isa_errors_format_every_variant() {
    let mut asm = Asm::new();
    let label = asm.new_label();
    assert!(audit(&AsmError::UnboundLabel(label)).contains("never bound"));
    assert!(audit(&AsmError::Rebound(label)).contains("twice"));
    assert!(audit(&AsmError::EmptyProgram).contains("no instructions"));

    assert!(audit(&DecodeError::Truncated).contains("truncated"));
    assert!(audit(&DecodeError::BadOpcode(0xff)).contains("0xff"));
    assert!(audit(&DecodeError::BadRegister(99)).contains("99"));
    assert!(audit(&DecodeError::BadSubcode(77)).contains("77"));
    assert!(audit(&DecodeError::BadMagic).contains("magic"));

    assert!(audit(&InterpError::PcOutOfRange { pc: 123 }).contains("123"));
    assert!(audit(&InterpError::UnhandledFault(Fault::PrivilegedAccess {
        addr: 0xdead,
    }))
    .contains("0xdead"));
    assert!(audit(&InterpError::StepLimit).contains("step limit"));
    // Leaf errors: no deeper cause to chain.
    assert!(InterpError::StepLimit.source().is_none());
}

#[test]
fn sim_errors_format_every_variant_and_chain_their_cause() {
    let stalled = stalled_error();
    assert!(audit(&stalled).contains("no commit for 500 cycles"));
    let SimError::Stalled { snapshot, .. } = &stalled else {
        panic!("expected Stalled, got: {stalled}");
    };

    assert!(audit(&SimError::CycleLimit {
        cycles: 42,
        snapshot: None,
    })
    .contains("42 cycles"));
    assert!(audit(&SimError::UnhandledFault(Fault::PrivilegedMsr { idx: 7 })).contains("msr 7"));
    assert!(audit(&SimError::PcOutOfRange { pc: 9 }).contains("pc 9"));

    let violation = InvariantViolation {
        cycle: 10,
        kind: InvariantKind::PregConservation,
        detail: "p3 leaked".into(),
        snapshot: (**snapshot).clone(),
    };
    audit(&violation);
    let wrapped = SimError::InvariantViolation(Box::new(violation));
    assert!(audit(&wrapped).contains("invariant violation"));
    // The inner violation is reachable through source(), typed.
    let src = wrapped.source().expect("violation chains its cause");
    assert!(src.downcast_ref::<InvariantViolation>().is_some());
    assert!(stalled.source().is_none());

    let interrupted = SmartsInterrupted {
        completed_windows: vec![1.5, 2.0],
        error: SimError::PcOutOfRange { pc: 3 },
    };
    assert!(audit(&interrupted).contains("2 complete window(s)"));
    let src = interrupted
        .source()
        .expect("interrupted run chains the SimError");
    assert!(src.downcast_ref::<SimError>().is_some());
}

#[test]
fn harness_errors_format_every_variant_and_chain_their_cause() {
    assert!(audit(&JobError::Panicked {
        message: "boom".into(),
    })
    .contains("boom"));

    let sim = JobError::Sim(SimError::PcOutOfRange { pc: 4 });
    assert!(audit(&sim).contains("pc 4"));
    assert!(sim
        .source()
        .expect("chains SimError")
        .downcast_ref::<SimError>()
        .is_some());

    let deadline = JobError::DeadlineExceeded {
        limit: 1_000,
        cause: SimError::CycleLimit {
            cycles: 1_001,
            snapshot: None,
        },
    };
    assert!(audit(&deadline).contains("1000"));
    let cause = deadline.source().expect("deadline names what tripped it");
    assert!(audit(cause).contains("cycle budget"));

    let io = JobError::Io {
        context: "write journal".into(),
        message: "disk full".into(),
    };
    assert!(audit(&io).contains("disk full"));
    assert!(io.source().is_none());

    assert!(audit(&JournalError::Io {
        path: "/tmp/x".into(),
        message: "permission denied".into(),
    })
    .contains("permission denied"));
    assert!(audit(&JournalError::ConfigMismatch {
        detail: "samples differ".into(),
    })
    .contains("samples differ"));
}
