//! Property-based invariants for the taint-tracking variants
//! (STT-Spectre/Futuristic, ShadowBinding-Eager/Lazy) over random
//! generated programs:
//!
//! 1. **Gate soundness** — with the cycle-level invariant checker armed,
//!    no transmitting instruction is ever in flight past issue with a
//!    currently-tainted transmit source (the `TaintGate` invariant checks
//!    this every cycle), and architecture is bit-exact against the
//!    reference interpreter.
//! 2. **Untaint-at-resolution** — taint is transient by construction:
//!    once the pipeline drains (halt, empty ROB) every physical
//!    register's taint bit is clear. The invariant checker enforces the
//!    same property at every empty-ROB cycle along the way.
//! 3. **Cost ordering** — on aggregate (a 6-program batch with the same
//!    5 % slack the broadcast-delay monotonicity test uses), each taint
//!    variant prices between the insecure Base OoO core and
//!    FullProtection: gating only transmitting uses can't be cheaper
//!    than gating nothing or dearer than delaying every wakeup.

use nda_core::config::SimConfig;
use nda_core::{OooCore, Variant};
use nda_isa::genprog::{generate, GenConfig};
use nda_isa::Interp;
use proptest::prelude::*;

const TAINT_VARIANTS: [Variant; 4] = [
    Variant::SttSpectre,
    Variant::SttFuturistic,
    Variant::ShadowBindingEager,
    Variant::ShadowBindingLazy,
];

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Properties 1 and 2: every taint variant, invariants armed, on
    /// random programs with the full generator grammar (indirect control
    /// flow exercises the gated JmpInd/CallInd/Ret transmit slots; MSR
    /// reads exercise the load-like taint sources).
    #[test]
    fn taint_gate_is_sound_and_taint_drains_at_halt(seed in 0u64..5_000) {
        let program = generate(seed, GenConfig { target_len: 100, max_depth: 2, indirect: true, fences: true, msrs: true });
        let mut oracle = Interp::new(&program);
        let exit = oracle.run(2_000_000).expect("oracle");
        for v in TAINT_VARIANTS {
            let mut cfg = SimConfig::for_variant(v);
            cfg.check_invariants = true;
            let mut core = OooCore::new(cfg, &program);
            let r = core.run(50_000_000).unwrap_or_else(|e| panic!("{}: {e}", v.name()));
            prop_assert!(r.halted, "{}: must halt", v.name());
            prop_assert_eq!(&r.regs, oracle.regs(), "{}: architecture diverged", v.name());
            prop_assert_eq!(r.stats.committed_insts, exit.retired);
            prop_assert!(
                !core.any_preg_tainted(),
                "{}: taint survived pipeline drain at halt", v.name()
            );
        }
    }
}

proptest! {
    // Fewer cases: each one runs a 6-program batch on 6 variants.
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// Property 3: aggregate cycle monotonicity
    /// Base OoO ≤ taint variant ≤ FullProtection (5 % batch slack —
    /// individual programs can invert through predictor/wrong-path
    /// perturbation, a batch cannot).
    #[test]
    fn taint_variants_price_between_base_ooo_and_full_protection(base_seed in 0u64..500) {
        let mut base_total = 0u64;
        let mut full_total = 0u64;
        let mut taint_totals = [0u64; 4];
        for k in 0..6 {
            let program = generate(
                base_seed * 64 + k,
                GenConfig { target_len: 100, max_depth: 2, indirect: false, fences: false, msrs: true },
            );
            let b = nda_core::run_variant(Variant::Ooo, &program, 50_000_000).expect("base halts");
            let f = nda_core::run_variant(Variant::FullProtection, &program, 50_000_000)
                .expect("full-protection halts");
            base_total += b.stats.cycles;
            full_total += f.stats.cycles;
            for (i, v) in TAINT_VARIANTS.iter().enumerate() {
                let r = nda_core::run_variant(*v, &program, 50_000_000)
                    .unwrap_or_else(|e| panic!("{}: {e}", v.name()));
                prop_assert_eq!(&r.regs, &b.regs, "{}: architecture diverged", v.name());
                taint_totals[i] += r.stats.cycles;
            }
        }
        for (i, v) in TAINT_VARIANTS.iter().enumerate() {
            prop_assert!(
                taint_totals[i] as f64 >= base_total as f64 * 0.95,
                "{}: gating transmits made the batch faster than Base OoO ({} vs {})",
                v.name(), taint_totals[i], base_total
            );
            prop_assert!(
                full_total as f64 >= taint_totals[i] as f64 * 0.95,
                "{}: dearer than FullProtection on the batch ({} vs {})",
                v.name(), taint_totals[i], full_total
            );
        }
    }
}
