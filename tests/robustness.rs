//! The pipeline-hardening contract, exercised end to end:
//!
//! * a deliberately planted free-list leak is caught *by the invariant
//!   checker* on the next cycle — not hours later by the cycle budget —
//!   with a snapshot that names the stuck ROB head;
//! * the forward-progress watchdog turns "no commit for a window" into a
//!   structured [`SimError::Stalled`] carrying the same diagnostics;
//! * both errors render human-readable reports via `Display`;
//! * the fault-injection differential harness finds zero architectural
//!   mismatches on a quick library-level run.

use nda::verify::{run_verify, InjectKind, VerifyConfig};
use nda::{SimConfig, SimError};
use nda_core::{InvariantKind, OooCore};
use nda_isa::{AluOp, Asm, Program, Reg};

/// A loop long enough to keep the ROB populated for thousands of cycles.
fn busy_loop() -> Program {
    let mut asm = Asm::new();
    asm.li(Reg::X2, 0).li(Reg::X3, 1).li(Reg::X4, 500);
    let top = asm.here_label();
    asm.alu(AluOp::Add, Reg::X5, Reg::X2, Reg::X3);
    asm.mov(Reg::X2, Reg::X3);
    asm.mov(Reg::X3, Reg::X5);
    asm.subi(Reg::X4, Reg::X4, 1);
    asm.bne(Reg::X4, Reg::X0, top);
    asm.halt();
    asm.assemble().unwrap()
}

#[test]
fn free_list_leak_is_caught_by_invariant_checker_not_cycle_limit() {
    let p = busy_loop();
    let mut cfg = SimConfig::ooo();
    cfg.check_invariants = true;
    let mut core = OooCore::new(cfg, &p);
    // Leak once the loop is in steady state with instructions in flight,
    // so the snapshot has a head to name.
    let mut leaked = false;
    let err = core
        .run_hooked(1_000_000, |c| {
            if !leaked && c.stats.committed_insts > 100 && c.snapshot().rob_occupancy >= 4 {
                c.debug_inject_free_list_leak().expect("a preg to leak");
                leaked = true;
            }
        })
        .expect_err("the leak must abort the run");
    match err {
        SimError::InvariantViolation(v) => {
            assert_eq!(v.kind, InvariantKind::PregConservation);
            assert!(v.detail.contains("leaked"), "detail: {}", v.detail);
            // Caught on the cycle of the leak, not at the 1M-cycle budget.
            assert!(v.cycle < 10_000, "caught too late, at cycle {}", v.cycle);
            let head = v
                .snapshot
                .head
                .as_ref()
                .expect("snapshot names the ROB head");
            assert!(!head.disasm.is_empty());
            assert_eq!(v.snapshot.cycle, v.cycle);
        }
        other => panic!("expected an invariant violation, got: {other}"),
    }
}

#[test]
fn sane_pipeline_passes_invariants_every_cycle() {
    let p = busy_loop();
    let mut cfg = SimConfig::ooo();
    cfg.check_invariants = true;
    let r = OooCore::new(cfg, &p).run(1_000_000).unwrap();
    assert!(r.halted);
    assert_eq!(r.regs[4], 0);
}

/// A load wedged behind an absurd injected memory latency: the pipeline
/// makes no progress and the watchdog must say so, naming the stuck load.
fn stalled_error() -> SimError {
    let mut asm = Asm::new();
    asm.li(Reg::X2, 0x5_0000);
    asm.ld8(Reg::X3, Reg::X2, 0);
    asm.halt();
    let p = asm.assemble().unwrap();
    let mut cfg = SimConfig::ooo();
    // Larger than the cold i-fetch miss, so fetch/dispatch get going and
    // the `li` commits before the window can elapse.
    cfg.watchdog_window = Some(500);
    let mut core = OooCore::new(cfg, &p);
    core.hier.set_extra_latency(1_000_000); // the ld8 will never complete
    core.run(1_000_000).expect_err("watchdog must fire")
}

#[test]
fn watchdog_reports_stall_with_rob_head_diagnostics() {
    match stalled_error() {
        SimError::Stalled {
            cycles,
            window,
            snapshot,
        } => {
            assert_eq!(window, 500);
            assert!(cycles < 10_000, "fired at {cycles}, long before any budget");
            assert!(cycles - snapshot.last_commit_cycle >= 500);
            let head = snapshot.head.as_ref().expect("stuck head is named");
            assert!(head.disasm.contains("ld8"), "head was `{}`", head.disasm);
        }
        other => panic!("expected a stall, got: {other}"),
    }
}

#[test]
fn stalled_error_display_is_self_contained() {
    let text = stalled_error().to_string();
    assert!(text.contains("no commit for 500 cycles"), "display: {text}");
    assert!(text.contains("rob head"), "display: {text}");
    assert!(text.contains("ld8"), "display: {text}");
}

#[test]
fn invariant_violation_display_names_kind_cycle_and_head() {
    let p = busy_loop();
    let mut cfg = SimConfig::ooo();
    cfg.check_invariants = true;
    let mut core = OooCore::new(cfg, &p);
    let mut leaked = false;
    let err = core
        .run_hooked(1_000_000, |c| {
            if !leaked && c.stats.committed_insts > 20 {
                c.debug_inject_free_list_leak();
                leaked = true;
            }
        })
        .expect_err("the leak must abort the run");
    let text = err.to_string();
    assert!(text.contains("invariant violation"), "display: {text}");
    assert!(
        text.contains("physical-register conservation"),
        "display: {text}"
    );
    assert!(text.contains("cycle"), "display: {text}");
    assert!(text.contains("rob head"), "display: {text}");
}

#[test]
fn sim_errors_are_cloneable() {
    let e = SimError::PcOutOfRange { pc: 7 };
    let e2 = e.clone();
    assert_eq!(e2.to_string(), "pc 7 out of range");
}

#[test]
fn differential_harness_smoke_run_is_clean() {
    let mut cfg = VerifyConfig::new(
        7,
        2,
        &[
            InjectKind::Squash,
            InjectKind::MemLat,
            InjectKind::Predictor,
        ],
    );
    cfg.gen.target_len = 100;
    cfg.gen.max_depth = 2;
    let report = run_verify(&cfg, |_, _| {});
    assert!(report.ok(), "mismatches: {:?}", report.mismatches);
    assert_eq!(report.iters, 2);
}
