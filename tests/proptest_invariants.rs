//! Property-based invariants over the whole stack.
//!
//! These complement the seed-sweep differential tests with
//! proptest-shrinkable cases: arbitrary generator configurations, policy
//! knobs and cache geometries.

use nda_core::config::SimConfig;
use nda_core::{run_with_config, NdaPolicy, OooCore, Propagation, Variant};
use nda_isa::genprog::{generate, GenConfig};
use nda_isa::Interp;
use proptest::prelude::*;

fn arb_policy() -> impl Strategy<Value = NdaPolicy> {
    (0..3u8, any::<bool>(), any::<bool>()).prop_map(|(p, br, lr)| NdaPolicy {
        propagation: match p {
            0 => Propagation::Off,
            1 => Propagation::Permissive,
            _ => Propagation::Strict,
        },
        bypass_restriction: br,
        load_restriction: lr,
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Any policy combination (not just the six presets) preserves
    /// architecture on random programs.
    #[test]
    fn arbitrary_policies_preserve_architecture(
        seed in 0u64..5_000,
        policy in arb_policy(),
    ) {
        let program = generate(seed, GenConfig { target_len: 100, max_depth: 2, indirect: true, fences: true, msrs: true });
        let mut oracle = Interp::new(&program);
        let exit = oracle.run(2_000_000).expect("oracle");
        let mut cfg = SimConfig::ooo();
        cfg.policy = policy;
        let r = run_with_config(cfg, &program, 50_000_000).expect("sim");
        prop_assert!(r.halted);
        prop_assert_eq!(&r.regs, oracle.regs());
        prop_assert_eq!(r.stats.committed_insts, exit.retired);
    }

    /// Micro-architectural knobs (widths, delays, flaw flags) never change
    /// architectural results.
    #[test]
    fn knobs_do_not_change_architecture(
        seed in 0u64..5_000,
        issue_width in 1usize..8,
        extra_delay in 0u64..3,
        ssb in any::<bool>(),
        flaw in any::<bool>(),
    ) {
        let program = generate(seed, GenConfig { target_len: 80, max_depth: 2, indirect: false, fences: true, msrs: true });
        let mut oracle = Interp::new(&program);
        oracle.run(2_000_000).expect("oracle");
        let mut cfg = SimConfig::ooo();
        cfg.core.issue_width = issue_width;
        cfg.core.broadcast_extra_delay = extra_delay;
        cfg.core.speculative_store_bypass = ssb;
        cfg.core.meltdown_flaw = flaw;
        cfg.policy = NdaPolicy::full_protection();
        let r = run_with_config(cfg, &program, 100_000_000).expect("sim");
        prop_assert_eq!(&r.regs, oracle.regs());
    }

    /// Committed-instruction counters are internally consistent: the class
    /// counters never exceed the total, and the Fig 9a cycle classes
    /// account for every cycle.
    #[test]
    fn counters_are_consistent(seed in 0u64..5_000) {
        let program = generate(seed, GenConfig { target_len: 120, max_depth: 2, indirect: true, fences: false, msrs: true });
        let mut core = OooCore::new(SimConfig::for_variant(Variant::StrictBr), &program);
        let r = core.run(50_000_000).expect("halts");
        let s = r.stats;
        prop_assert!(s.committed_loads + s.committed_stores + s.committed_branches <= s.committed_insts);
        prop_assert_eq!(
            s.commit_cycles + s.memory_stall_cycles + s.backend_stall_cycles + s.frontend_stall_cycles,
            s.cycles,
            "every cycle must be classified exactly once"
        );
        prop_assert!(s.issued_insts >= s.committed_loads + s.committed_stores, "memory ops issue");
        prop_assert!(s.broadcasts >= s.deferred_broadcasts || s.deferred_broadcasts == 0);
    }

    /// The fine-grained CPI stack partitions total cycles exactly on every
    /// variant — including the in-order baseline and the InvisiSpec
    /// models — and the `nda-delay` class is charged only by cores that
    /// can actually withhold results (zero on Base OoO and In-Order).
    #[test]
    fn cpi_stack_partitions_cycles_on_every_variant(seed in 0u64..5_000) {
        let program = generate(seed, GenConfig { target_len: 100, max_depth: 2, indirect: true, fences: false, msrs: true });
        for v in Variant::all() {
            let r = nda_core::run_variant(v, &program, 50_000_000).expect("halts");
            let s = &r.stats;
            prop_assert_eq!(
                s.cpi_stack.total(), s.cycles,
                "{}: CPI classes must partition total cycles", v.name()
            );
            // The fine stack refines the coarse one class-for-class.
            prop_assert_eq!(s.cpi_stack.get(nda_stats::CpiClass::Commit), s.commit_cycles);
            let coarse_mem = s.cpi_stack.memory_total();
            prop_assert_eq!(coarse_mem, s.memory_stall_cycles);
            if matches!(v, Variant::Ooo | Variant::InOrder) {
                prop_assert_eq!(
                    s.cpi_stack.get(nda_stats::CpiClass::NdaDelay), 0,
                    "{}: an unprotected core never defers a broadcast", v.name()
                );
            }
        }
    }

    /// The broadcast-delay knob (Fig 9e) slows execution on aggregate —
    /// individual short programs can invert (delayed resolution perturbs
    /// wrong-path pollution and predictor state), but a batch cannot —
    /// and never changes architectural results.
    #[test]
    fn broadcast_delay_is_monotone_on_aggregate(base_seed in 0u64..500) {
        let mut totals = [0u64; 2];
        for k in 0..6 {
            let program = generate(
                base_seed * 64 + k,
                GenConfig { target_len: 100, max_depth: 2, indirect: false, fences: false, msrs: true },
            );
            let mut regs = Vec::new();
            for (i, delay) in [0u64, 2].into_iter().enumerate() {
                let mut cfg = SimConfig::ooo();
                cfg.policy = NdaPolicy::strict();
                cfg.core.broadcast_extra_delay = delay;
                let r = run_with_config(cfg, &program, 50_000_000).expect("sim");
                totals[i] += r.stats.cycles;
                regs.push(r.regs);
            }
            prop_assert_eq!(regs[0], regs[1]);
        }
        prop_assert!(totals[1] as f64 >= totals[0] as f64 * 0.95,
            "2-cycle broadcast delay made the batch much faster: {} vs {}", totals[1], totals[0]);
    }
}
